//! The TimeUnion engine: open/put/get/retention/recovery (§3.4).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use tu_common::lockdep::{self, Mutex};

use tu_cloud::cost::LatencyMode;
use tu_cloud::StorageEnv;
use tu_common::clock::{system_clock, SharedClock};
use tu_common::types::is_group_id;
use tu_common::{
    Error, GroupId, Labels, Result, Sample, SeriesId, SeriesRef, Timestamp, Value, GROUP_ID_FLAG,
};
use tu_compress::agg::{self, AggKind, AggState, ChunkStats};
use tu_compress::{gorilla, nullxor};
use tu_index::{InvertedIndex, Selector};
use tu_lsm::wal::{Wal, WalRecord};
use tu_lsm::{TimeTree, TreeOptions};
use tu_mmap::pagecache::PageCache;
use tu_mmap::ChunkArena;

use crate::catalog::{Catalog, CatalogRecord};
use crate::group::{self, GroupInsert, GroupObject};
use crate::model;
use crate::profile::QueryProfile;
use crate::query::{aggregate_step, QueryResult, SampleMerger, SeriesResult, StepWindows};
use crate::series::{self, HeadInsert, SeriesObject};
use crate::shard::ShardedMap;

/// Engine configuration.
#[derive(Clone)]
pub struct Options {
    /// Samples batched per in-memory chunk before sealing (paper: 32).
    pub chunk_samples: usize,
    /// Time-partitioned LSM-tree options.
    pub tree: TreeOptions,
    /// Trie file-array segmentation (paper: one million slots per file).
    pub index_slots_per_segment: usize,
    /// Page-cache budget for all file-backed memory structures.
    pub page_cache_bytes: usize,
    /// Chunk slots per arena file.
    pub arena_chunks_per_file: u32,
    /// Retention window; samples older than `now - retention` are purged
    /// by [`TimeUnion::apply_retention`]. `None` keeps everything.
    pub retention_ms: Option<i64>,
    /// Flush the WAL after this many buffered records (group commit).
    pub wal_batch_records: usize,
    /// Purge the WAL when it exceeds this size.
    pub wal_purge_bytes: u64,
    /// Storage latency modelling for the cloud tiers.
    pub latency: LatencyMode,
    /// Latency model of the fast tier (default: EBS-like).
    pub block_model: tu_cloud::cost::LatencyModel,
    /// Latency model of the slow tier (default: S3-like; the EBS-only
    /// evaluation of Figure 17 passes an EBS model here).
    pub object_model: tu_cloud::cost::LatencyModel,
    /// Run `maintain` inline whenever the memtable seals. Disable when an
    /// external worker thread drives maintenance.
    pub inline_maintenance: bool,
    /// Clock used for retention decisions.
    pub clock: SharedClock,
    /// Worker threads for query fan-out across matched series. `0` resolves
    /// automatically (the `TU_QUERY_THREADS` environment variable if set,
    /// else available parallelism capped at 8). Results are identical for
    /// every thread count; see [`TimeUnion::set_query_threads`].
    pub query_threads: usize,
    /// Worker threads for batched-ingest fan-out ([`TimeUnion::put_batch`])
    /// and, unless `tree.flush_threads` overrides it, the flush/compaction
    /// workers. `0` resolves automatically (the `TU_INGEST_THREADS`
    /// environment variable if set, else available parallelism capped
    /// at 8). On-disk state is identical for every thread count; see
    /// [`TimeUnion::set_ingest_threads`].
    pub ingest_threads: usize,
    /// Address for the live observability endpoint (e.g.
    /// `"127.0.0.1:9090"`; port `0` picks a free port). `None` serves
    /// nothing. Consulted by [`TimeUnion::serve_if_configured`], where the
    /// `TU_SERVE_ADDR` environment variable overrides this field.
    pub serve_addr: Option<String>,
    /// Self-monitoring: an embedded TimeUnion instance recording this
    /// engine's own metrics history, with range-query endpoints and
    /// alert rules (see [`crate::selfmon`]). Started with the serve
    /// plane. `None` disables it; the `TU_SELFMON` / `TU_SELFMON_RULES`
    /// environment variables override (see [`crate::selfmon::resolve`]).
    pub selfmon: Option<crate::selfmon::SelfmonOptions>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            chunk_samples: 32,
            tree: TreeOptions::default(),
            index_slots_per_segment: 1 << 20,
            page_cache_bytes: 256 << 20,
            arena_chunks_per_file: 1 << 16,
            retention_ms: None,
            wal_batch_records: 1024,
            wal_purge_bytes: 64 << 20,
            latency: LatencyMode::Off,
            block_model: tu_cloud::cost::LatencyModel::ebs(),
            object_model: tu_cloud::cost::LatencyModel::s3(),
            inline_maintenance: true,
            clock: system_clock(),
            query_threads: 0,
            ingest_threads: 0,
            serve_addr: None,
            selfmon: None,
        }
    }
}

/// Memory breakdown for the Figure 3b/13d/16 experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryStats {
    /// Postings lists (heap).
    pub postings_bytes: usize,
    /// Series + group memory objects (heap).
    pub objects_bytes: usize,
    /// Resident pages of the file-backed structures (trie + head chunks).
    pub page_cache_bytes: usize,
    /// MemTable payload waiting to be flushed.
    pub memtable_bytes: usize,
    /// Parsed SSTable blocks cached in memory.
    pub block_cache_bytes: usize,
}

impl MemoryStats {
    pub fn total(&self) -> usize {
        self.postings_bytes
            + self.objects_bytes
            + self.page_cache_bytes
            + self.memtable_bytes
            + self.block_cache_bytes
    }
}

struct PendingCheckpoint {
    stream: u64,
    seq: u64,
    epoch: u64,
}

/// Pending checkpoints past this mark flag the `flush_backlog` health
/// check as degraded: maintenance is falling behind ingest.
const PENDING_CKPT_DEGRADED: usize = 1 << 16;

/// The TimeUnion timeseries engine.
pub struct TimeUnion {
    dir: PathBuf,
    opts: Options,
    env: StorageEnv,
    index: InvertedIndex,
    tree: TimeTree,
    wal: Wal,
    catalog: Catalog,
    page_cache: Arc<PageCache>,
    series_arena: ChunkArena,
    group_ts_arena: ChunkArena,
    group_val_arena: ChunkArena,
    /// Hot-path maps are sharded: concurrent writers on distinct series
    /// lock different shards, so they only contend when they hash together.
    series: ShardedMap<SeriesId, Arc<Mutex<SeriesObject>>>,
    by_labels: ShardedMap<Vec<u8>, SeriesId>,
    groups: ShardedMap<GroupId, Arc<Mutex<GroupObject>>>,
    group_by_tags: ShardedMap<Vec<u8>, GroupId>,
    next_series: AtomicU64,
    next_group: AtomicU64,
    /// Longest time span observed in any sealed chunk; queries extend
    /// their range start by this much to catch straddling chunks.
    max_chunk_span: AtomicI64,
    pending_ckpts: Mutex<Vec<PendingCheckpoint>>,
    wal_unflushed: AtomicU64,
    replaying: std::sync::atomic::AtomicBool,
    /// False after the most recent WAL flush failed; drives the `wal`
    /// health check (an engine that cannot persist its log is unhealthy).
    wal_ok: std::sync::atomic::AtomicBool,
    /// Set by [`TimeUnion::begin_shutdown`]; flips `/healthz` and
    /// `/readyz` so load balancers drain the instance before drop.
    shutting_down: std::sync::atomic::AtomicBool,
    worker: Mutex<Option<Worker>>,
    /// The self-monitoring plane, when enabled with the serve plane.
    /// Ranked *below* `serve` so `health_report` (called from serve
    /// threads) and `start_serving` can take it without inverting.
    selfmon: Mutex<Option<Arc<crate::selfmon::SelfMonitor>>>,
    serve: Mutex<Option<ServePlane>>,
    /// Resolved query fan-out width; runtime-adjustable so benchmarks can
    /// sweep thread counts against one engine instance.
    query_threads: std::sync::atomic::AtomicUsize,
    /// Resolved ingest fan-out width for [`TimeUnion::put_batch`].
    ingest_threads: std::sync::atomic::AtomicUsize,
    /// Serializes maintenance passes: concurrent ingest workers may seal
    /// memtables simultaneously, but only one thread at a time may run the
    /// flush/compact/checkpoint pipeline.
    maintenance: Mutex<()>,
    obs: EngineObs,
}

/// Pre-resolved global-registry handles for the engine's hot paths (the
/// registry lookup happens once at open, not per sample). Traced, so the
/// ingest/query entry points attribute their charges to active contexts.
struct EngineObs {
    ingest_samples: tu_obs::TracedCounter,
    queries: tu_obs::TracedCounter,
    parallel_queries: tu_obs::TracedCounter,
    parallel_tasks: tu_obs::TracedCounter,
    parallel_batches: tu_obs::TracedCounter,
    parallel_ingest_tasks: tu_obs::TracedCounter,
    agg_pushdown_chunks: tu_obs::TracedCounter,
    agg_meta_answered: tu_obs::TracedCounter,
    agg_skipped_chunks: tu_obs::TracedCounter,
}

impl EngineObs {
    fn resolve() -> Self {
        EngineObs {
            ingest_samples: tu_obs::traced("core.ingest.samples"),
            queries: tu_obs::traced("core.query.requests"),
            parallel_queries: tu_obs::traced("core.query.parallel.queries"),
            parallel_tasks: tu_obs::traced("core.query.parallel.tasks"),
            parallel_batches: tu_obs::traced("core.ingest.parallel.batches"),
            parallel_ingest_tasks: tu_obs::traced("core.ingest.parallel.tasks"),
            agg_pushdown_chunks: tu_obs::traced("core.query.agg.pushdown_chunks"),
            agg_meta_answered: tu_obs::traced("core.query.agg.meta_answered"),
            agg_skipped_chunks: tu_obs::traced("core.query.agg.skipped_chunks"),
        }
    }
}

struct Worker {
    stop: crossbeam::channel::Sender<()>,
    join: std::thread::JoinHandle<()>,
}

/// The live observability plane of one serving engine: the HTTP server
/// plus the monitor sampling windowed vitals behind `/vitals`.
struct ServePlane {
    server: tu_obs::ObsServer,
    monitor: Arc<tu_obs::Monitor>,
    ledger: Arc<tu_cloud::ledger::CostLedger>,
}

impl TimeUnion {
    /// Opens (creating or recovering) a TimeUnion instance rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>, opts: Options) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let env =
            StorageEnv::open_with_models(&dir, opts.latency, opts.block_model, opts.object_model)?;
        let page_cache = PageCache::new(opts.page_cache_bytes);
        let index = InvertedIndex::open(
            page_cache.clone(),
            dir.join("index"),
            opts.index_slots_per_segment,
        )?;
        // Unless the tree has its own flush width, the flush/compaction
        // workers inherit the engine's ingest knob (the TU_INGEST_THREADS
        // env var still wins inside the tree's resolution).
        let mut tree_opts = opts.tree.clone();
        if tree_opts.flush_threads == 0 {
            tree_opts.flush_threads = opts.ingest_threads;
        }
        let tree = TimeTree::open(env.clone(), tree_opts)?;
        let wal = Wal::open(env.block.clone(), "wal/engine.log");
        let catalog = Catalog::open(env.block.clone(), "catalog/series.cat");
        // Head chunks are rebuilt from the WAL; reset the arenas so handles
        // can be reassigned deterministically.
        for sub in ["heads/series", "heads/group-ts", "heads/group-val"] {
            let p = dir.join(sub);
            if p.exists() {
                std::fs::remove_dir_all(&p)?;
            }
        }
        let series_arena = ChunkArena::open(
            page_cache.clone(),
            dir.join("heads/series"),
            series::slot_size(opts.chunk_samples),
            opts.arena_chunks_per_file,
        )?;
        let group_ts_arena = ChunkArena::open(
            page_cache.clone(),
            dir.join("heads/group-ts"),
            group::ts_slot_size(opts.chunk_samples),
            opts.arena_chunks_per_file,
        )?;
        let group_val_arena = ChunkArena::open(
            page_cache.clone(),
            dir.join("heads/group-val"),
            group::val_slot_size(opts.chunk_samples),
            opts.arena_chunks_per_file,
        )?;
        let engine = TimeUnion {
            dir,
            env,
            index,
            tree,
            wal,
            catalog,
            page_cache,
            series_arena,
            group_ts_arena,
            group_val_arena,
            series: ShardedMap::new(&lockdep::CORE_MAP_OBJECTS),
            by_labels: ShardedMap::new(&lockdep::CORE_MAP_LABELS),
            groups: ShardedMap::new(&lockdep::CORE_MAP_OBJECTS),
            group_by_tags: ShardedMap::new(&lockdep::CORE_MAP_LABELS),
            next_series: AtomicU64::new(1),
            next_group: AtomicU64::new(1),
            max_chunk_span: AtomicI64::new(0),
            pending_ckpts: Mutex::new(&lockdep::ENGINE_CKPTS, Vec::new()),
            wal_unflushed: AtomicU64::new(0),
            replaying: std::sync::atomic::AtomicBool::new(false),
            wal_ok: std::sync::atomic::AtomicBool::new(true),
            shutting_down: std::sync::atomic::AtomicBool::new(false),
            worker: Mutex::new(&lockdep::ENGINE_WORKER, None),
            selfmon: Mutex::new(&lockdep::ENGINE_SELFMON, None),
            serve: Mutex::new(&lockdep::ENGINE_SERVE, None),
            query_threads: std::sync::atomic::AtomicUsize::new(
                tu_common::pool::WorkerPool::resolve(opts.query_threads).threads(),
            ),
            ingest_threads: std::sync::atomic::AtomicUsize::new(
                tu_common::pool::WorkerPool::resolve_env(
                    tu_common::pool::INGEST_THREADS_ENV,
                    opts.ingest_threads,
                )
                .threads(),
            ),
            maintenance: Mutex::new(&lockdep::ENGINE_MAINTENANCE, ()),
            obs: EngineObs::resolve(),
            opts,
        };
        tu_obs::gauge("core.query.parallel.threads")
            .set(engine.query_threads.load(Ordering::Relaxed) as i64);
        tu_obs::gauge("core.ingest.parallel.threads")
            .set(engine.ingest_threads.load(Ordering::Relaxed) as i64);
        // Partition heat timestamps follow the engine clock, so
        // last-access and decay windows line up with query time ranges
        // in tests and simulations driven by a virtual clock.
        let heat_clock = engine.opts.clock.clone();
        tu_obs::heat::install_clock(Arc::new(move || heat_clock.now_ms()));
        engine.recover()?;
        tu_obs::log::info(
            "core.open",
            "engine recovered",
            &[
                ("series", engine.series_count().into()),
                ("groups", engine.group_count().into()),
            ],
        );
        Ok(engine)
    }

    // --- live observability plane ----------------------------------------------

    /// Starts the embedded observability endpoint if configured: the
    /// `TU_SERVE_ADDR` environment variable wins, then
    /// [`Options::serve_addr`]. Returns the bound address, or `None` when
    /// neither is set.
    pub fn serve_if_configured(self: &Arc<Self>) -> Result<Option<std::net::SocketAddr>> {
        let addr = match std::env::var("TU_SERVE_ADDR") {
            Ok(v) if !v.is_empty() => Some(v),
            _ => self.opts.serve_addr.clone(),
        };
        match addr {
            Some(addr) => self.start_serving(&addr).map(Some),
            None => Ok(None),
        }
    }

    /// Binds the live endpoint on `addr` (port `0` picks a free port) and
    /// starts the vitals monitor. `/healthz`, `/readyz`, and `/vitals`
    /// reflect this engine; `/metrics`, `/metrics.json`, and `/flight`
    /// expose the process-global registry and flight recorder. Idempotent:
    /// a second call returns the already-bound address.
    pub fn start_serving(self: &Arc<Self>, addr: &str) -> Result<std::net::SocketAddr> {
        // Lock order: selfmon (rank below serve) before serve.
        let mut selfmon_slot = self.selfmon.lock();
        let mut serve = self.serve.lock();
        if let Some(plane) = serve.as_ref() {
            return Ok(plane.server.local_addr());
        }
        let clock = self.opts.clock.clone();
        let monitor = Arc::new(tu_obs::Monitor::new(tu_obs::MonitorOptions {
            now_ms: Some(Arc::new(move || clock.now_ms())),
            ..Default::default()
        }));
        monitor.start();
        // The health closure holds a weak reference: the server must not
        // keep a dropped engine alive, and a request racing engine drop
        // reports "closed" instead of dangling.
        let weak = Arc::downgrade(self);
        let health: tu_obs::HealthSource = Arc::new(move || match weak.upgrade() {
            Some(engine) => engine.health_report(),
            None => tu_obs::HealthReport {
                ready: false,
                checks: vec![tu_obs::HealthCheck::new(
                    "engine",
                    tu_obs::Health::Unhealthy,
                    "closed",
                )],
            },
        });
        // The cost ledger rides the monitor's sampling cadence: every
        // vitals sample also closes a billing window.
        let ledger = tu_cloud::ledger::CostLedger::new(128);
        monitor.add_observer(ledger.observer());
        // Self-monitoring rides the same sampler, registered *after* the
        // ledger so each sample's billing window closes before the self
        // engine reads it. A failed open degrades to a log line — the
        // primary must serve even when its telemetry sidecar cannot.
        let mut selfmon: Option<Arc<crate::selfmon::SelfMonitor>> = None;
        if let Some(cfg) = crate::selfmon::resolve(&self.opts.selfmon) {
            match crate::selfmon::SelfMonitor::open(
                &self.dir,
                self.opts.clock.clone(),
                Arc::clone(&ledger),
                cfg,
            ) {
                Ok(sm) => {
                    monitor.add_observer(sm.observer());
                    tu_obs::log::info(
                        "core.selfmon",
                        "self-monitoring enabled",
                        &[
                            ("alert_rules", (sm.rules().alerts.len() as i64).into()),
                            ("recording_rules", (sm.rules().records.len() as i64).into()),
                        ],
                    );
                    selfmon = Some(sm);
                }
                Err(e) => tu_obs::log::warn(
                    "core.selfmon",
                    "self-monitoring failed to start",
                    &[("error", e.to_string().into())],
                ),
            }
        }
        let lsm_weak = Arc::downgrade(self);
        let lsm_endpoint = tu_obs::Endpoint::new("/introspect/lsm", move || {
            let body = match lsm_weak.upgrade() {
                Some(engine) => {
                    let view = engine.tree.introspect();
                    crate::introspect::lsm_json(
                        &view,
                        tu_obs::traced("lsm.bloom.checks").get(),
                        tu_obs::traced("lsm.bloom.negatives").get(),
                    )
                }
                None => "{\"error\":\"engine closed\"}".to_string(),
            };
            ("application/json".to_string(), body)
        });
        let parts_weak = Arc::downgrade(self);
        let parts_endpoint = tu_obs::Endpoint::new("/introspect/partitions", move || {
            let body = match parts_weak.upgrade() {
                Some(engine) => {
                    let view = engine.tree.introspect();
                    crate::introspect::partitions_json(&view, &tu_obs::heat::snapshot())
                }
                None => "{\"error\":\"engine closed\"}".to_string(),
            };
            ("application/json".to_string(), body)
        });
        let costs_ledger = Arc::clone(&ledger);
        let costs_endpoint = tu_obs::Endpoint::new("/costs", move || {
            ("application/json".to_string(), costs_ledger.to_json())
        });
        let mut extra = vec![lsm_endpoint, parts_endpoint, costs_endpoint];
        if let Some(sm) = selfmon.as_ref() {
            let range_sm = Arc::clone(sm);
            extra.push(tu_obs::Endpoint::with_query("/query_range", move |query| {
                (
                    "application/json".to_string(),
                    range_sm.query_range_json(query),
                )
            }));
            let series_sm = Arc::clone(sm);
            extra.push(tu_obs::Endpoint::new("/series", move || {
                ("application/json".to_string(), series_sm.series_json())
            }));
            let labels_sm = Arc::clone(sm);
            extra.push(tu_obs::Endpoint::new("/labels", move || {
                ("application/json".to_string(), labels_sm.labels_json())
            }));
            let alerts_sm = Arc::clone(sm);
            extra.push(tu_obs::Endpoint::new("/alerts", move || {
                ("application/json".to_string(), alerts_sm.alerts_json())
            }));
        }
        let server = tu_obs::ObsServer::bind(
            addr,
            tu_obs::ServeSources {
                health,
                monitor: Some(Arc::clone(&monitor)),
                extra,
            },
        )?;
        let local = server.local_addr();
        tu_obs::log::info(
            "core.serve",
            "observability endpoint listening",
            &[("addr", local.to_string().into())],
        );
        *selfmon_slot = selfmon;
        *serve = Some(ServePlane {
            server,
            monitor,
            ledger,
        });
        Ok(local)
    }

    /// Stops the live endpoint and its monitor, if serving. Idempotent;
    /// also runs on drop.
    pub fn stop_serving(&self) {
        // Same order as `start_serving`: selfmon before serve.
        let plane = {
            let mut selfmon = self.selfmon.lock();
            let plane = self.serve.lock().take();
            *selfmon = None;
            plane
        };
        if let Some(plane) = plane {
            plane.server.shutdown();
            plane.monitor.stop();
        }
    }

    /// The vitals monitor of the live endpoint, while serving.
    pub fn monitor(&self) -> Option<Arc<tu_obs::Monitor>> {
        self.serve.lock().as_ref().map(|p| Arc::clone(&p.monitor))
    }

    /// The windowed cost ledger behind `/costs`, while serving.
    pub fn cost_ledger(&self) -> Option<Arc<tu_cloud::ledger::CostLedger>> {
        self.serve.lock().as_ref().map(|p| Arc::clone(&p.ledger))
    }

    /// The self-monitoring plane, while serving with self-monitoring
    /// enabled (see [`crate::selfmon`]).
    pub fn selfmon(&self) -> Option<Arc<crate::selfmon::SelfMonitor>> {
        self.selfmon.lock().clone()
    }

    /// Marks the engine as draining: `/readyz` and `/healthz` start
    /// answering 503 so orchestrators stop routing to it, while queries
    /// and inserts keep working until drop.
    pub fn begin_shutdown(&self) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            tu_obs::log::info("core.shutdown", "engine draining", &[]);
        }
    }

    /// Aggregates the engine's liveness signals. Cheap (atomic loads and
    /// two short lock holds) — called per `/healthz` request.
    pub fn health_report(&self) -> tu_obs::HealthReport {
        use tu_obs::{Health, HealthCheck};
        let mut checks = Vec::with_capacity(4);
        let shutting_down = self.shutting_down.load(Ordering::SeqCst);
        if shutting_down {
            checks.push(HealthCheck::new(
                "shutdown",
                Health::Unhealthy,
                "engine draining",
            ));
        }
        let wal_ok = self.wal_ok.load(Ordering::SeqCst);
        checks.push(HealthCheck::new(
            "wal",
            if wal_ok {
                Health::Ok
            } else {
                Health::Unhealthy
            },
            if wal_ok {
                "writable"
            } else {
                "last flush failed"
            },
        ));
        // Checkpoints waiting on a memtable flush: a growing backlog means
        // maintenance is not keeping up with ingest.
        let backlog = self.pending_ckpts.lock().len();
        checks.push(HealthCheck::new(
            "flush_backlog",
            if backlog > PENDING_CKPT_DEGRADED {
                Health::Degraded
            } else {
                Health::Ok
            },
            format!("{backlog} pending checkpoints"),
        ));
        // Memtable pressure: sealed-but-unflushed data piling up well past
        // the configured budget.
        let memtable = self.tree.memtable_bytes();
        let budget = self.opts.tree.memtable_bytes.max(1);
        checks.push(HealthCheck::new(
            "memtable",
            if memtable > budget.saturating_mul(8) {
                Health::Degraded
            } else {
                Health::Ok
            },
            format!("{memtable} B buffered (budget {budget} B)"),
        ));
        // A maintenance worker that exited without being stopped is dead
        // weight: nothing will flush or checkpoint again.
        if let Some(w) = self.worker.lock().as_ref() {
            let finished = w.join.is_finished();
            checks.push(HealthCheck::new(
                "maintenance_worker",
                if finished {
                    Health::Unhealthy
                } else {
                    Health::Ok
                },
                if finished { "exited" } else { "running" },
            ));
        }
        // Firing alert rules degrade (never fail) health: an alert is an
        // operator signal, not proof the engine itself is broken. The
        // Arc is cloned out so the alert-state lock is taken with no
        // engine lock held.
        let selfmon = self.selfmon.lock().clone();
        if let Some(sm) = selfmon {
            for alert in sm.firing_alerts() {
                checks.push(HealthCheck::new(
                    &format!("alert:{}", alert.name),
                    Health::Degraded,
                    alert.predicate,
                ));
            }
        }
        tu_obs::HealthReport {
            ready: !shutting_down && !self.replaying.load(Ordering::SeqCst),
            checks,
        }
    }

    /// Spawns the background maintenance worker: flushes, compactions, WAL
    /// checkpoints, and retention run every `interval` off the insert
    /// path. Pair with `Options::inline_maintenance = false`. Stopped by
    /// [`TimeUnion::stop_background`] or on drop. Fails only when the OS
    /// refuses to spawn the thread.
    pub fn start_background(self: &Arc<Self>, interval: std::time::Duration) -> Result<()> {
        let mut worker = self.worker.lock();
        if worker.is_some() {
            return Ok(());
        }
        let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
        let weak = Arc::downgrade(self);
        let join = std::thread::Builder::new()
            .name("timeunion-maintenance".into())
            .spawn(move || loop {
                match stop_rx.recv_timeout(interval) {
                    Ok(()) | Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                }
                let Some(engine) = weak.upgrade() else {
                    return;
                };
                // Maintenance failures must not kill the worker; the next
                // foreground sync() will surface persistent errors, but
                // each failure is logged (rate-limited per target).
                if let Err(e) = engine.maintain() {
                    tu_obs::log::warn(
                        "core.maintain",
                        "background maintenance failed",
                        &[("error", e.to_string().into())],
                    );
                }
                match engine.apply_retention() {
                    Ok((partitions, objects)) if partitions + objects > 0 => {
                        tu_obs::log::info(
                            "core.retention",
                            "retention purged data",
                            &[
                                ("partitions", partitions.into()),
                                ("objects", objects.into()),
                            ],
                        );
                    }
                    Ok(_) => {}
                    Err(e) => {
                        tu_obs::log::warn(
                            "core.retention",
                            "retention pass failed",
                            &[("error", e.to_string().into())],
                        );
                    }
                }
            })?;
        *worker = Some(Worker {
            stop: stop_tx,
            join,
        });
        Ok(())
    }

    /// Stops the background worker, if running, and waits for it.
    pub fn stop_background(&self) {
        if let Some(w) = self.worker.lock().take() {
            let _ = w.stop.send(());
            let _ = w.join.join();
        }
    }

    // --- recovery -------------------------------------------------------------

    fn recover(&self) -> Result<()> {
        // 1. Catalog: rebuild identifier maps, memory objects, and index
        //    postings (idempotent on the persisted trie).
        for record in self.catalog.replay()? {
            match record {
                CatalogRecord::Series { id, labels } => {
                    let obj = SeriesObject::new(id, labels.clone(), &self.series_arena)?;
                    self.index.add(&labels, id)?;
                    self.by_labels.insert(labels.to_bytes(), id);
                    self.series
                        .insert(id, Arc::new(Mutex::new(&lockdep::CORE_OBJECT, obj)));
                    self.next_series.fetch_max(id + 1, Ordering::Relaxed);
                }
                CatalogRecord::Group { gid, group_tags } => {
                    let obj = GroupObject::new(gid, group_tags.clone(), &self.group_ts_arena)?;
                    self.group_by_tags.insert(group_tags.to_bytes(), gid);
                    self.groups
                        .insert(gid, Arc::new(Mutex::new(&lockdep::CORE_OBJECT, obj)));
                    self.next_group
                        .fetch_max((gid & !GROUP_ID_FLAG) + 1, Ordering::Relaxed);
                }
                CatalogRecord::Member {
                    gid,
                    slot,
                    unique_tags,
                } => {
                    let obj = self
                        .groups
                        .get(&gid)
                        .ok_or_else(|| Error::corruption("catalog member before its group"))?;
                    let mut g = obj.lock();
                    let got = g.add_member(&self.group_val_arena, unique_tags.clone())?;
                    if got != slot {
                        return Err(Error::corruption(
                            "catalog member slots out of order".to_string(),
                        ));
                    }
                    self.index.add(&g.group_tags.merge(&unique_tags), gid)?;
                }
            }
        }
        // 2. Engine meta (monotonic hints).
        if let Ok(meta) = self.env.block.read_file("engine.meta") {
            if meta.len() == 8 {
                let span = tu_common::bytes::i64_le(&meta);
                self.max_chunk_span.fetch_max(span, Ordering::Relaxed);
            }
        }
        // 3. WAL: reapply records newer than their stream's checkpoint.
        let records = self.wal.replay()?;
        let mut watermark: HashMap<u64, u64> = HashMap::new();
        for r in &records {
            if r.checkpoint {
                let w = watermark.entry(r.stream).or_insert(0);
                *w = (*w).max(r.seq);
            }
        }
        self.replaying.store(true, Ordering::SeqCst);
        let result = (|| -> Result<()> {
            for r in &records {
                if r.checkpoint || watermark.get(&r.stream).is_some_and(|&w| r.seq <= w) {
                    continue;
                }
                if is_group_id(r.stream) {
                    let Some((t, entries)) = decode_group_row(&r.payload) else {
                        continue; // records for members lost to a torn catalog
                    };
                    if let Some(obj) = self.groups.get(&r.stream) {
                        let valid = {
                            let g = obj.lock();
                            entries
                                .iter()
                                .all(|(slot, _)| (*slot as usize) < g.member_count())
                        };
                        if valid {
                            self.apply_group_row(r.stream, t, &entries, r.seq)?;
                        }
                    }
                } else if let Some((t, v)) = decode_sample(&r.payload) {
                    if self.series.contains_key(&r.stream) {
                        self.apply_sample(r.stream, t, v, r.seq)?;
                    }
                }
            }
            Ok(())
        })();
        self.replaying.store(false, Ordering::SeqCst);
        result
    }

    // --- series inserts ---------------------------------------------------------

    /// Slow-path insert (§3.4): resolves or creates the series by its
    /// tags, returning its ID for subsequent fast-path inserts.
    pub fn put(&self, labels: &Labels, t: Timestamp, v: Value) -> Result<SeriesId> {
        if labels.is_empty() {
            return Err(Error::invalid("a timeseries needs at least one tag"));
        }
        let id = self.get_or_create_series(labels)?;
        self.put_by_id(id, t, v)?;
        Ok(id)
    }

    /// Fast-path insert by series ID (§3.4), skipping tag comparison.
    /// Safe to call from many threads at once: writers on distinct series
    /// contend only on their map shard and the shared WAL buffer.
    pub fn put_by_id(&self, id: SeriesId, t: Timestamp, v: Value) -> Result<()> {
        self.obs.ingest_samples.inc();
        let seq = {
            let obj = self
                .series
                .get(&id)
                .ok_or_else(|| Error::not_found(format!("series {id}")))?;
            let mut obj = obj.lock();
            obj.seq += 1;
            let seq = obj.seq;
            self.log(WalRecord {
                stream: id,
                seq,
                checkpoint: false,
                payload: encode_sample(t, v),
            })?;
            let outcome = obj.insert(&self.series_arena, t, v, self.opts.chunk_samples)?;
            drop(obj);
            self.handle_series_outcome(id, t, v, seq, outcome)?;
            seq
        };
        let _ = seq;
        Ok(())
    }

    /// Batched parallel ingest: groups `samples` by series and fans the
    /// per-series runs across the engine's ingest pool (see
    /// [`TimeUnion::set_ingest_threads`]). Samples of one series are
    /// applied by one worker in their given order, so per-series sample
    /// order — and with it the resulting chunk and tree state — is
    /// identical for every thread count. Returns once every sample in the
    /// batch is durable in the WAL (one group-commit wave, shared with
    /// concurrent batches).
    pub fn put_batch(&self, samples: &[(SeriesId, Timestamp, Value)]) -> Result<()> {
        // Group by series, preserving first-seen series order and the
        // in-batch sample order within each series.
        let mut order: Vec<SeriesId> = Vec::new();
        let mut by_series: HashMap<SeriesId, Vec<(Timestamp, Value)>> = HashMap::new();
        for &(id, t, v) in samples {
            by_series
                .entry(id)
                .or_insert_with(|| {
                    order.push(id);
                    Vec::new()
                })
                .push((t, v));
        }
        let pool = tu_common::pool::WorkerPool::new(self.ingest_threads.load(Ordering::Relaxed));
        if pool.threads() > 1 && order.len() > 1 {
            self.obs.parallel_batches.inc();
            self.obs.parallel_ingest_tasks.add(order.len() as u64);
        }
        let results = pool.run(order.len(), |i| -> Result<()> {
            let id = order[i];
            for &(t, v) in &by_series[&id] {
                self.put_by_id(id, t, v)?;
            }
            Ok(())
        });
        for r in results {
            r?;
        }
        self.sync_wal()
    }

    /// Sets the ingest fan-out width (clamped to at least 1). Takes effect
    /// on the next `put_batch` call; thread count never changes the
    /// resulting on-disk state.
    pub fn set_ingest_threads(&self, threads: usize) {
        let n = threads.max(1);
        self.ingest_threads.store(n, Ordering::Relaxed);
        tu_obs::gauge("core.ingest.parallel.threads").set(n as i64);
    }

    /// The current ingest fan-out width.
    pub fn ingest_threads(&self) -> usize {
        self.ingest_threads.load(Ordering::Relaxed)
    }

    fn apply_sample(&self, id: SeriesId, t: Timestamp, v: Value, seq: u64) -> Result<()> {
        let obj = self
            .series
            .get(&id)
            .ok_or_else(|| Error::not_found(format!("series {id}")))?;
        let mut o = obj.lock();
        o.seq = o.seq.max(seq);
        let outcome = o.insert(&self.series_arena, t, v, self.opts.chunk_samples)?;
        drop(o);
        self.handle_series_outcome(id, t, v, seq, outcome)
    }

    fn handle_series_outcome(
        &self,
        id: SeriesId,
        t: Timestamp,
        v: Value,
        seq: u64,
        outcome: HeadInsert,
    ) -> Result<()> {
        match outcome {
            HeadInsert::Buffered => Ok(()),
            HeadInsert::Sealed {
                first_ts,
                last_ts,
                chunk,
            } => self.flush_chunk(id, first_ts, last_ts, chunk, seq),
            HeadInsert::OlderThanHead => {
                // Early flush (§3.1 case 4): a one-sample chunk goes to the
                // tree's corresponding time partition directly.
                let chunk = gorilla::compress_chunk_framed(&[Sample::new(t, v)])?;
                self.flush_chunk(id, t, t, chunk, seq)
            }
        }
    }

    fn flush_chunk(
        &self,
        stream: u64,
        first_ts: Timestamp,
        last_ts: Timestamp,
        chunk: Vec<u8>,
        seq: u64,
    ) -> Result<()> {
        self.max_chunk_span
            .fetch_max(last_ts - first_ts, Ordering::Relaxed);
        let epoch = self.tree.seal_epoch();
        let sealed = self.tree.put(stream, first_ts, chunk);
        self.pending_ckpts
            .lock()
            .push(PendingCheckpoint { stream, seq, epoch });
        if sealed && self.opts.inline_maintenance && !self.replaying.load(Ordering::SeqCst) {
            self.maintain()?;
        }
        Ok(())
    }

    fn get_or_create_series(&self, labels: &Labels) -> Result<SeriesId> {
        let key = labels.to_bytes();
        if let Some(id) = self.by_labels.get(&key) {
            return Ok(id);
        }
        // Create with the key's shard write-locked to serialize racers on
        // the same label set; creators of other series proceed in parallel.
        let mut by_labels = self.by_labels.lock_shard(&key);
        if let Some(&id) = by_labels.get(&key) {
            return Ok(id);
        }
        let id = self.next_series.fetch_add(1, Ordering::Relaxed);
        let obj = SeriesObject::new(id, labels.clone(), &self.series_arena)?;
        self.series
            .insert(id, Arc::new(Mutex::new(&lockdep::CORE_OBJECT, obj)));
        by_labels.insert(key, id);
        drop(by_labels);
        self.index.add(labels, id)?;
        self.catalog.append(&CatalogRecord::Series {
            id,
            labels: labels.clone(),
        });
        Ok(id)
    }

    // --- group inserts -----------------------------------------------------------

    /// Slow-path group insert (§3.4): resolves or creates the group and
    /// its members, inserts one shared-timestamp row, and returns the
    /// group ID plus each series' slot index for the fast path.
    ///
    /// `member_tags[i]` may be the series' full tag set (group tags are
    /// extracted per Figure 6) or just its unique tags.
    pub fn put_group(
        &self,
        group_tags: &Labels,
        member_tags: &[Labels],
        t: Timestamp,
        values: &[Value],
    ) -> Result<(GroupId, Vec<SeriesRef>)> {
        if member_tags.len() != values.len() {
            return Err(Error::invalid(
                "member tag sets and values must have equal length",
            ));
        }
        if group_tags.is_empty() {
            return Err(Error::invalid("a group needs at least one group tag"));
        }
        let gid = self.get_or_create_group(group_tags)?;
        let obj = self
            .groups
            .get(&gid)
            .ok_or_else(|| Error::corruption("group object missing right after creation"))?;
        let mut g = obj.lock();
        let mut refs = Vec::with_capacity(member_tags.len());
        for tags in member_tags {
            let unique = match model::to_grouped(tags, group_tags) {
                Ok(grouped) => grouped.unique_tags,
                // Tags that don't carry the group tags are already unique.
                Err(_) => tags.clone(),
            };
            let slot = match g.member_slot(&unique) {
                Some(slot) => slot,
                None => {
                    let slot = g.add_member(&self.group_val_arena, unique.clone())?;
                    self.index.add(&group_tags.merge(&unique), gid)?;
                    self.catalog.append(&CatalogRecord::Member {
                        gid,
                        slot,
                        unique_tags: unique,
                    });
                    slot
                }
            };
            refs.push(slot);
        }
        let entries: Vec<(SeriesRef, Value)> =
            refs.iter().copied().zip(values.iter().copied()).collect();
        self.obs.ingest_samples.add(entries.len() as u64);
        g.seq += 1;
        let seq = g.seq;
        self.log(WalRecord {
            stream: gid,
            seq,
            checkpoint: false,
            payload: encode_group_row(t, &entries),
        })?;
        let member_count = g.member_count();
        let outcome = g.insert_row(
            &self.group_ts_arena,
            &self.group_val_arena,
            t,
            &entries,
            self.opts.chunk_samples,
        )?;
        drop(g);
        self.handle_group_outcome(gid, t, &entries, member_count, seq, outcome)?;
        Ok((gid, refs))
    }

    /// Fast-path group insert by group ID and member slots (§3.4).
    pub fn put_group_fast(
        &self,
        gid: GroupId,
        refs: &[SeriesRef],
        t: Timestamp,
        values: &[Value],
    ) -> Result<()> {
        if refs.len() != values.len() {
            return Err(Error::invalid("refs and values must have equal length"));
        }
        let entries: Vec<(SeriesRef, Value)> =
            refs.iter().copied().zip(values.iter().copied()).collect();
        self.obs.ingest_samples.add(entries.len() as u64);
        let obj = self
            .groups
            .get(&gid)
            .ok_or_else(|| Error::not_found(format!("group {gid}")))?;
        let mut g = obj.lock();
        g.seq += 1;
        let seq = g.seq;
        self.log(WalRecord {
            stream: gid,
            seq,
            checkpoint: false,
            payload: encode_group_row(t, &entries),
        })?;
        let member_count = g.member_count();
        let outcome = g.insert_row(
            &self.group_ts_arena,
            &self.group_val_arena,
            t,
            &entries,
            self.opts.chunk_samples,
        )?;
        drop(g);
        self.handle_group_outcome(gid, t, &entries, member_count, seq, outcome)
    }

    fn apply_group_row(
        &self,
        gid: GroupId,
        t: Timestamp,
        entries: &[(SeriesRef, Value)],
        seq: u64,
    ) -> Result<()> {
        let obj = self
            .groups
            .get(&gid)
            .ok_or_else(|| Error::not_found(format!("group {gid}")))?;
        let mut g = obj.lock();
        g.seq = g.seq.max(seq);
        let member_count = g.member_count();
        let outcome = g.insert_row(
            &self.group_ts_arena,
            &self.group_val_arena,
            t,
            entries,
            self.opts.chunk_samples,
        )?;
        drop(g);
        self.handle_group_outcome(gid, t, entries, member_count, seq, outcome)
    }

    fn handle_group_outcome(
        &self,
        gid: GroupId,
        t: Timestamp,
        entries: &[(SeriesRef, Value)],
        member_count: usize,
        seq: u64,
        outcome: GroupInsert,
    ) -> Result<()> {
        match outcome {
            GroupInsert::Buffered => Ok(()),
            GroupInsert::Sealed {
                first_ts,
                last_ts,
                chunk,
            } => self.flush_chunk(gid, first_ts, last_ts, chunk, seq),
            GroupInsert::OlderThanHead => {
                // One-row group chunk straight into the tree.
                let mut enc = nullxor::GroupChunkEncoder::new(member_count);
                let mut row = vec![None; member_count];
                for (slot, v) in entries {
                    row[*slot as usize] = Some(*v);
                }
                enc.append_row(t, &row)?;
                self.flush_chunk(gid, t, t, enc.finish_framed(), seq)
            }
        }
    }

    fn get_or_create_group(&self, group_tags: &Labels) -> Result<GroupId> {
        let key = group_tags.to_bytes();
        if let Some(gid) = self.group_by_tags.get(&key) {
            return Ok(gid);
        }
        let mut by_tags = self.group_by_tags.lock_shard(&key);
        if let Some(&gid) = by_tags.get(&key) {
            return Ok(gid);
        }
        let gid = self.next_group.fetch_add(1, Ordering::Relaxed) | GROUP_ID_FLAG;
        let obj = GroupObject::new(gid, group_tags.clone(), &self.group_ts_arena)?;
        self.groups
            .insert(gid, Arc::new(Mutex::new(&lockdep::CORE_OBJECT, obj)));
        by_tags.insert(key, gid);
        drop(by_tags);
        // Group tags are indexed under the group ID so selectors on shared
        // tags resolve to one postings entry (Figure 5).
        self.index.add(group_tags, gid)?;
        self.catalog.append(&CatalogRecord::Group {
            gid,
            group_tags: group_tags.clone(),
        });
        Ok(gid)
    }

    // --- logging ----------------------------------------------------------------

    fn log(&self, record: WalRecord) -> Result<()> {
        if self.replaying.load(Ordering::SeqCst) {
            return Ok(());
        }
        self.wal.append(&record);
        let n = self.wal_unflushed.fetch_add(1, Ordering::Relaxed) + 1;
        if n as usize >= self.opts.wal_batch_records {
            self.wal_unflushed.store(0, Ordering::Relaxed);
            // Opportunistic group commit: if another writer is already
            // leading a flush wave, our records ride a later one instead
            // of stalling this writer behind the in-flight fsync.
            self.wal_health(self.wal.nudge())?;
        }
        Ok(())
    }

    /// Blocks until every WAL record queued so far is durable on the fast
    /// tier (one group-commit wave, shared with concurrent callers).
    pub fn sync_wal(&self) -> Result<()> {
        self.wal_unflushed.store(0, Ordering::Relaxed);
        self.flush_wal()
    }

    /// Flushes the WAL, mirroring the outcome into the `wal` health check
    /// (and logging the first failure of a failure streak).
    fn flush_wal(&self) -> Result<()> {
        self.wal_health(self.wal.flush())
    }

    fn wal_health(&self, result: Result<()>) -> Result<()> {
        match result {
            Ok(()) => {
                self.wal_ok.store(true, Ordering::SeqCst);
                Ok(())
            }
            Err(e) => {
                if self.wal_ok.swap(false, Ordering::SeqCst) {
                    tu_obs::log::error(
                        "core.wal",
                        "WAL flush failed",
                        &[("error", e.to_string().into())],
                    );
                }
                Err(e)
            }
        }
    }

    // --- maintenance --------------------------------------------------------------

    /// Runs background work to quiescence: tree flush/compaction, WAL
    /// checkpoints and purging, catalog/meta persistence. Serialized: when
    /// several ingest workers seal memtables at once, one thread runs the
    /// pipeline while the others' triggers fold into its pass.
    pub fn maintain(&self) -> Result<()> {
        let _serialize = self.maintenance.lock();
        self.maintain_locked()
    }

    fn maintain_locked(&self) -> Result<()> {
        self.tree.maintain()?;
        // Emit checkpoints for chunks whose memtable reached L0.
        let flushed = self.tree.flushed_epoch();
        let ready: Vec<PendingCheckpoint> = {
            let mut pending = self.pending_ckpts.lock();
            let (ready, keep): (Vec<_>, Vec<_>) =
                pending.drain(..).partition(|c| c.epoch < flushed);
            *pending = keep;
            ready
        };
        if !ready.is_empty() && !self.replaying.load(Ordering::SeqCst) {
            for c in &ready {
                self.wal.append(&WalRecord {
                    stream: c.stream,
                    seq: c.seq,
                    checkpoint: true,
                    payload: Vec::new(),
                });
            }
            self.flush_wal()?;
            if self.wal.len() > self.opts.wal_purge_bytes {
                self.wal.purge()?;
            }
        }
        self.catalog.flush()?;
        self.env.block.write_file(
            "engine.meta",
            &self.max_chunk_span.load(Ordering::Relaxed).to_le_bytes(),
        )?;
        Ok(())
    }

    /// Seals every open head chunk into the tree and drains all levels of
    /// fast storage down to the slow tier. Used by long-range-query
    /// benchmarks that want the paper's "after all pending samples are
    /// flushed" state.
    pub fn flush_all(&self) -> Result<()> {
        for obj in self.series.values() {
            let mut o = obj.lock();
            let seq = o.seq;
            if let Some((first, last, chunk)) = o.seal(&self.series_arena)? {
                let id = o.id;
                drop(o);
                self.flush_chunk(id, first, last, chunk, seq)?;
            }
        }
        for obj in self.groups.values() {
            let mut g = obj.lock();
            let seq = g.seq;
            if let Some((first, last, chunk)) =
                g.seal(&self.group_ts_arena, &self.group_val_arena)?
            {
                let gid = g.gid;
                drop(g);
                self.flush_chunk(gid, first, last, chunk, seq)?;
            }
        }
        let _serialize = self.maintenance.lock();
        self.tree.flush_all_to_slow()?;
        self.maintain_locked()
    }

    /// Flushes logs/indexes; call before dropping for durability.
    pub fn sync(&self) -> Result<()> {
        self.flush_wal()?;
        self.catalog.flush()?;
        self.index.sync()?;
        self.maintain()
    }

    /// Applies the retention policy (§3.3 "Data retention"): drops tree
    /// partitions past the watermark and purges memory objects whose
    /// newest sample is older than it. Returns `(partitions, objects)`
    /// removed.
    pub fn apply_retention(&self) -> Result<(usize, usize)> {
        let Some(retention) = self.opts.retention_ms else {
            return Ok((0, 0));
        };
        let watermark = self.opts.clock.now_ms() - retention;
        let partitions = self.tree.purge_before(watermark)?;
        let mut objects = 0;
        // Series objects older than the watermark.
        let stale: Vec<SeriesId> = self
            .series
            .entries()
            .into_iter()
            .filter(|(_, o)| o.lock().last_ts < watermark)
            .map(|(id, _)| id)
            .collect();
        for id in stale {
            let removed = self.series.remove(&id);
            if let Some(obj) = removed {
                let obj = Arc::try_unwrap(obj)
                    .map_err(|_| Error::Closed("series busy during retention".into()))?
                    .into_inner();
                self.by_labels.remove(&obj.labels.to_bytes());
                self.index.remove(&obj.labels, id)?;
                obj.release(&self.series_arena)?;
                objects += 1;
            }
        }
        let stale_groups: Vec<GroupId> = self
            .groups
            .entries()
            .into_iter()
            .filter(|(_, o)| o.lock().last_ts < watermark)
            .map(|(gid, _)| gid)
            .collect();
        for gid in stale_groups {
            let removed = self.groups.remove(&gid);
            if let Some(obj) = removed {
                let obj = Arc::try_unwrap(obj)
                    .map_err(|_| Error::Closed("group busy during retention".into()))?
                    .into_inner();
                self.group_by_tags.remove(&obj.group_tags.to_bytes());
                self.index.remove(&obj.group_tags, gid)?;
                for (_, unique) in obj.members() {
                    self.index.remove(&obj.group_tags.merge(unique), gid)?;
                }
                obj.release(&self.group_ts_arena, &self.group_val_arena)?;
                objects += 1;
            }
        }
        Ok((partitions, objects))
    }

    // --- queries -------------------------------------------------------------------

    /// Get (§3.4): selects series and groups by tag selectors and returns
    /// each matched timeseries' samples in `[start, end)`.
    ///
    /// Matched ids are processed on the engine's query pool (see
    /// [`TimeUnion::set_query_threads`]); per-id work is independent, and
    /// the final sort by label bytes — an injective key — fixes the output
    /// order, so results are identical for every thread count.
    pub fn query(
        &self,
        selectors: &[Selector],
        start: Timestamp,
        end: Timestamp,
    ) -> Result<QueryResult> {
        self.query_exec(selectors, start, end).map(|(out, _)| out)
    }

    /// [`TimeUnion::query`] under a fresh trace context, returning the
    /// results together with the query's cost profile: per-stage timings
    /// and the per-tier requests/bytes this query (and only this query)
    /// charged, collected across every pool worker it fanned out to.
    ///
    /// The execution path is byte-identical to `query` — profiling wraps
    /// it, it does not fork it.
    pub fn query_profiled(
        &self,
        selectors: &[Selector],
        start: Timestamp,
        end: Timestamp,
    ) -> Result<(QueryResult, QueryProfile)> {
        let ctx = tu_obs::TraceContext::start("query");
        let heat_before = tu_obs::heat::snapshot();
        let t0 = tu_obs::Stopwatch::start();
        let (out, matched) = self.query_exec(selectors, start, end)?;
        let wall_ns = t0.elapsed_ns();
        let threads = self.query_threads.load(Ordering::Relaxed);
        let mut profile = QueryProfile::from_summary(&ctx.finish(), matched, threads, wall_ns);
        profile.fill_heat(&heat_before, &tu_obs::heat::snapshot());
        Ok((out, profile))
    }

    /// Shared body of `query`/`query_profiled`; returns the results and
    /// how many ids the index matched.
    fn query_exec(
        &self,
        selectors: &[Selector],
        start: Timestamp,
        end: Timestamp,
    ) -> Result<(QueryResult, usize)> {
        self.obs.queries.inc();
        let _span = tu_obs::span("core.query");
        let ids = {
            let _stage = tu_obs::span("core.query.select");
            self.index.select(selectors)?
        };
        let pool = tu_common::pool::WorkerPool::new(self.query_threads.load(Ordering::Relaxed));
        if pool.threads() > 1 && ids.len() > 1 {
            self.obs.parallel_queries.inc();
            self.obs.parallel_tasks.add(ids.len() as u64);
        }
        let per_id = {
            let _stage = tu_obs::span("core.query.fanout");
            pool.run(ids.len(), |i| {
                let id = ids[i];
                if is_group_id(id) {
                    self.query_group(id, selectors, start, end)
                } else {
                    self.query_series(id, start, end)
                }
            })
        };
        let _stage = tu_obs::span("core.query.sort");
        let mut out: QueryResult = Vec::new();
        for r in per_id {
            out.extend(r?);
        }
        out.sort_by_cached_key(|s| s.labels.to_bytes());
        Ok((out, ids.len()))
    }

    /// Sets the query fan-out width (clamped to at least 1). Takes effect
    /// on the next `query` call; thread count never changes results.
    pub fn set_query_threads(&self, threads: usize) {
        let n = threads.max(1);
        self.query_threads.store(n, Ordering::Relaxed);
        tu_obs::gauge("core.query.parallel.threads").set(n as i64);
    }

    /// The current query fan-out width.
    pub fn query_threads(&self) -> usize {
        self.query_threads.load(Ordering::Relaxed)
    }

    fn query_slack(&self) -> i64 {
        self.max_chunk_span.load(Ordering::Relaxed) + 1
    }

    fn query_series(
        &self,
        id: SeriesId,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<SeriesResult>> {
        let Some(obj) = self.series.get(&id) else {
            return Ok(Vec::new()); // purged between index lookup and here
        };
        let mut merger = SampleMerger::new(start, end);
        let from = start.saturating_sub(self.query_slack());
        for (_, chunk) in self.tree.range_chunks(id, from, end)? {
            merger.offer_all(gorilla::decompress_chunk(&chunk)?);
        }
        let o = obj.lock();
        merger.offer_all(o.head_samples(&self.series_arena)?);
        let labels = o.labels.clone();
        drop(o);
        if merger.is_empty() {
            return Ok(Vec::new());
        }
        Ok(vec![SeriesResult {
            id,
            labels,
            samples: merger.finish(),
        }])
    }

    fn query_group(
        &self,
        gid: GroupId,
        selectors: &[Selector],
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<SeriesResult>> {
        let mut out = Vec::new();
        let Some(obj) = self.groups.get(&gid) else {
            return Ok(out);
        };
        // Second-level index: which members match every selector?
        let (matched, group_tags): (Vec<(SeriesRef, Labels)>, Labels) = {
            let g = obj.lock();
            let matched = g
                .members()
                .filter_map(|(slot, unique)| {
                    let full = g.group_tags.merge(unique);
                    let ok = selectors
                        .iter()
                        .all(|sel| full.get(&sel.key).is_some_and(|v| sel.matches_value(v)));
                    ok.then(|| (slot, full))
                })
                .collect();
            (matched, g.group_tags.clone())
        };
        let _ = group_tags;
        if matched.is_empty() {
            return Ok(out);
        }
        let from = start.saturating_sub(self.query_slack());
        let chunks = self.tree.range_chunks(gid, from, end)?;
        let mut mergers: Vec<SampleMerger> = matched
            .iter()
            .map(|_| SampleMerger::new(start, end))
            .collect();
        for (_, chunk) in &chunks {
            let dec = nullxor::GroupChunkDecoder::new(chunk)?;
            let ts = dec.decode_timestamps()?;
            for (mi, (slot, _)) in matched.iter().enumerate() {
                if (*slot as usize) < dec.columns() {
                    let col = dec.decode_column(*slot as usize)?;
                    for (t, v) in ts.iter().zip(col) {
                        if let Some(v) = v {
                            mergers[mi].offer(*t, v);
                        }
                    }
                }
            }
        }
        {
            let g = obj.lock();
            for (mi, (slot, _)) in matched.iter().enumerate() {
                for (t, v) in
                    g.head_samples_of(&self.group_ts_arena, &self.group_val_arena, *slot)?
                {
                    mergers[mi].offer(t, v);
                }
            }
        }
        for ((_, full), merger) in matched.into_iter().zip(mergers) {
            if !merger.is_empty() {
                out.push(SeriesResult {
                    id: gid,
                    labels: full,
                    samples: merger.finish(),
                });
            }
        }
        Ok(out)
    }

    // --- aggregation pushdown (§3.4 + ROADMAP item 4) --------------------------------

    /// Step-windowed aggregation Get: computes `kind` per aligned
    /// `step_ms` window over `[start, end)` for every matched timeseries.
    ///
    /// Results are **bit-identical** to materializing the same samples
    /// with [`TimeUnion::query`] and folding them through
    /// [`aggregate_step`], at any thread count — the pushdown merely
    /// avoids decoding where it can:
    ///
    /// * chunks whose stats footer shows the whole chunk inside one
    ///   window are merged from metadata alone (`meta_answered`),
    /// * chunks whose time or value bounds cannot affect the result are
    ///   skipped outright (`skipped_chunks`),
    /// * everything else is stream-folded without building sample
    ///   vectors (`pushdown_chunks`),
    /// * and any series whose chunks lack stats (pre-stats format) or
    ///   overlap in time (out-of-order backfill, duplicate timestamps)
    ///   falls back to the materializing reference path, keeping the
    ///   merge semantics of `query` exactly.
    pub fn query_aggregate(
        &self,
        selectors: &[Selector],
        kind: AggKind,
        start: Timestamp,
        end: Timestamp,
        step_ms: i64,
    ) -> Result<QueryResult> {
        self.query_aggregate_exec(selectors, kind, start, end, step_ms)
            .map(|(out, _)| out)
    }

    /// [`TimeUnion::query_aggregate`] under a fresh trace context,
    /// returning the aggregate rows together with the same stage-timing
    /// profile `query_profiled` produces (select/fanout/sort spans plus
    /// the `core.query.agg.*` counter deltas in
    /// [`QueryProfile::counters`]).
    pub fn query_aggregate_profiled(
        &self,
        selectors: &[Selector],
        kind: AggKind,
        start: Timestamp,
        end: Timestamp,
        step_ms: i64,
    ) -> Result<(QueryResult, QueryProfile)> {
        let ctx = tu_obs::TraceContext::start("query_aggregate");
        let heat_before = tu_obs::heat::snapshot();
        let t0 = tu_obs::Stopwatch::start();
        let (out, matched) = self.query_aggregate_exec(selectors, kind, start, end, step_ms)?;
        let wall_ns = t0.elapsed_ns();
        let threads = self.query_threads.load(Ordering::Relaxed);
        let mut profile = QueryProfile::from_summary(&ctx.finish(), matched, threads, wall_ns);
        profile.fill_heat(&heat_before, &tu_obs::heat::snapshot());
        Ok((out, profile))
    }

    /// Shared body of `query_aggregate`/`query_aggregate_profiled`,
    /// mirroring `query_exec`: same index select, same parallel fan-out,
    /// same label-byte sort.
    fn query_aggregate_exec(
        &self,
        selectors: &[Selector],
        kind: AggKind,
        start: Timestamp,
        end: Timestamp,
        step_ms: i64,
    ) -> Result<(QueryResult, usize)> {
        if step_ms <= 0 {
            return Err(Error::invalid("aggregation step must be positive"));
        }
        self.obs.queries.inc();
        let _span = tu_obs::span("core.query");
        let ids = {
            let _stage = tu_obs::span("core.query.select");
            self.index.select(selectors)?
        };
        let pool = tu_common::pool::WorkerPool::new(self.query_threads.load(Ordering::Relaxed));
        if pool.threads() > 1 && ids.len() > 1 {
            self.obs.parallel_queries.inc();
            self.obs.parallel_tasks.add(ids.len() as u64);
        }
        let per_id = {
            let _stage = tu_obs::span("core.query.fanout");
            pool.run(ids.len(), |i| {
                let id = ids[i];
                if is_group_id(id) {
                    self.aggregate_group(id, selectors, kind, start, end, step_ms)
                } else {
                    self.aggregate_series(id, kind, start, end, step_ms)
                }
            })
        };
        let _stage = tu_obs::span("core.query.sort");
        let mut out: QueryResult = Vec::new();
        for r in per_id {
            out.extend(r?);
        }
        out.sort_by_cached_key(|s| s.labels.to_bytes());
        Ok((out, ids.len()))
    }

    /// Whether a series' chunk set qualifies for pushdown: every chunk
    /// carries a stats footer, chunk time ranges are strictly disjoint
    /// and ascending, and head samples in range lie strictly after every
    /// sealed chunk. Anything else (pre-stats chunks, out-of-order
    /// patch chunks, duplicate timestamps across sources) needs the
    /// merger's newest-wins semantics and falls back.
    fn pushdown_plan_ok(
        stats: &[Option<ChunkStats>],
        heads: &[&[(Timestamp, Value)]],
        start: Timestamp,
        end: Timestamp,
    ) -> bool {
        let mut prev_max: Option<Timestamp> = None;
        for s in stats {
            let Some(s) = s else { return false };
            if let Some(p) = prev_max {
                if s.min_ts <= p {
                    return false;
                }
            }
            prev_max = Some(s.max_ts);
        }
        if let Some(p) = prev_max {
            for head in heads {
                if head.iter().any(|&(t, _)| t >= start && t < end && t <= p) {
                    return false;
                }
            }
        }
        true
    }

    fn aggregate_series(
        &self,
        id: SeriesId,
        kind: AggKind,
        start: Timestamp,
        end: Timestamp,
        step_ms: i64,
    ) -> Result<Vec<SeriesResult>> {
        let Some(obj) = self.series.get(&id) else {
            return Ok(Vec::new());
        };
        let from = start.saturating_sub(self.query_slack());
        let chunks = self.tree.range_chunks(id, from, end)?;
        let (head, labels) = {
            let o = obj.lock();
            (o.head_samples(&self.series_arena)?, o.labels.clone())
        };
        let stats: Vec<Option<ChunkStats>> = chunks
            .iter()
            .map(|(_, c)| agg::split_envelope(c).0)
            .collect();
        let head_pairs: Vec<(Timestamp, Value)> = head.iter().map(|s| (s.t, s.v)).collect();
        let samples = if Self::pushdown_plan_ok(&stats, &[&head_pairs], start, end) {
            self.fold_series_pushdown(&chunks, &stats, &head, kind, start, end, step_ms)?
        } else {
            // Reference fallback: materialize through the merger exactly
            // like `query_series`, then fold.
            let mut merger = SampleMerger::new(start, end);
            for (_, chunk) in &chunks {
                merger.offer_all(gorilla::decompress_chunk(chunk)?);
            }
            merger.offer_all(head);
            aggregate_step(kind, &merger.finish(), start, end, step_ms)
        };
        if samples.is_empty() {
            return Ok(Vec::new());
        }
        Ok(vec![SeriesResult {
            id,
            labels,
            samples,
        }])
    }

    /// The per-series pushdown fold. Chunks arrive strictly ascending and
    /// disjoint (guaranteed by `pushdown_plan_ok`), so folding them in
    /// order visits samples in exactly the order the reference merger
    /// emits them.
    fn fold_series_pushdown(
        &self,
        chunks: &[(Timestamp, Vec<u8>)],
        stats: &[Option<ChunkStats>],
        head: &[Sample],
        kind: AggKind,
        start: Timestamp,
        end: Timestamp,
        step_ms: i64,
    ) -> Result<Vec<Sample>> {
        let mut win = StepWindows::new(start, end, step_ms);
        // Counter deltas accumulate locally and post once per series:
        // per-chunk `TracedCounter` increments would charge the active
        // trace context (a mutex + map update) thousands of times per
        // query.
        let (mut n_push, mut n_meta, mut n_skip) = (0u64, 0u64, 0u64);
        for ((_, chunk), st) in chunks.iter().zip(stats) {
            let s = st
                .as_ref()
                .ok_or_else(|| Error::invalid("pushdown fold requires chunk stats"))?;
            // Time-bound skip: nothing in [start, end).
            if s.max_ts < start || s.min_ts >= end {
                n_skip += 1;
                continue;
            }
            // Meta answering needs the chunk fully inside the query range
            // and one window.
            if s.min_ts >= start
                && s.max_ts < end
                && win.bucket_of(s.min_ts) == win.bucket_of(s.max_ts)
            {
                let bucket = win.bucket_of(s.min_ts);
                match win.buckets.last_mut() {
                    Some((b, acc)) if *b == bucket => match kind {
                        // Value-bound skip: the chunk cannot move this
                        // window's extremum, so don't even merge.
                        AggKind::Max
                            if agg::value_max(acc.max, s.max_v).to_bits() == acc.max.to_bits() =>
                        {
                            n_skip += 1;
                            continue;
                        }
                        AggKind::Min
                            if agg::value_min(acc.min, s.min_v).to_bits() == acc.min.to_bits() =>
                        {
                            n_skip += 1;
                            continue;
                        }
                        // Extremum/count merges are associative: exact
                        // into a non-empty window.
                        AggKind::Max | AggKind::Min | AggKind::Count => {
                            acc.merge_stats(s);
                            n_meta += 1;
                            continue;
                        }
                        // Sum/Avg into a non-empty window would reorder
                        // float additions; Rate needs first/last samples.
                        _ => {}
                    },
                    _ => {
                        // A fresh window: the footer answers everything
                        // except Rate bit-exactly (sum was folded at
                        // encode time in the same order).
                        if !matches!(kind, AggKind::Rate) {
                            let mut acc = AggState::new();
                            acc.merge_stats(s);
                            win.buckets.push((bucket, acc));
                            n_meta += 1;
                            continue;
                        }
                    }
                }
                // No meta answer, but every sample still lands in this
                // one window: fold straight into its accumulator,
                // skipping the per-sample range check and bucket math.
                n_push += 1;
                match win.buckets.last_mut() {
                    Some((b, acc)) if *b == bucket => {
                        gorilla::ChunkDecoder::new(chunk)?.for_each(|t, v| acc.observe(t, v))?;
                    }
                    _ => {
                        let mut acc = AggState::new();
                        gorilla::ChunkDecoder::new(chunk)?.for_each(|t, v| acc.observe(t, v))?;
                        win.buckets.push((bucket, acc));
                    }
                }
                continue;
            }
            // Stream-fold without materializing a sample vector.
            n_push += 1;
            gorilla::ChunkDecoder::new(chunk)?.for_each(|t, v| win.observe(t, v))?;
        }
        for s in head {
            win.observe(s.t, s.v);
        }
        if n_push > 0 {
            self.obs.agg_pushdown_chunks.add(n_push);
        }
        if n_meta > 0 {
            self.obs.agg_meta_answered.add(n_meta);
        }
        if n_skip > 0 {
            self.obs.agg_skipped_chunks.add(n_skip);
        }
        Ok(win.finish(kind))
    }

    fn aggregate_group(
        &self,
        gid: GroupId,
        selectors: &[Selector],
        kind: AggKind,
        start: Timestamp,
        end: Timestamp,
        step_ms: i64,
    ) -> Result<Vec<SeriesResult>> {
        let mut out = Vec::new();
        let Some(obj) = self.groups.get(&gid) else {
            return Ok(out);
        };
        let matched: Vec<(SeriesRef, Labels)> = {
            let g = obj.lock();
            g.members()
                .filter_map(|(slot, unique)| {
                    let full = g.group_tags.merge(unique);
                    let ok = selectors
                        .iter()
                        .all(|sel| full.get(&sel.key).is_some_and(|v| sel.matches_value(v)));
                    ok.then(|| (slot, full))
                })
                .collect()
        };
        if matched.is_empty() {
            return Ok(out);
        }
        let from = start.saturating_sub(self.query_slack());
        let chunks = self.tree.range_chunks(gid, from, end)?;
        let heads: Vec<Vec<(Timestamp, Value)>> = {
            let g = obj.lock();
            matched
                .iter()
                .map(|(slot, _)| {
                    g.head_samples_of(&self.group_ts_arena, &self.group_val_arena, *slot)
                })
                .collect::<Result<_>>()?
        };
        let stats: Vec<Option<ChunkStats>> = chunks
            .iter()
            .map(|(_, c)| agg::split_envelope(c).0)
            .collect();
        let head_slices: Vec<&[(Timestamp, Value)]> = heads.iter().map(|h| h.as_slice()).collect();
        if !Self::pushdown_plan_ok(&stats, &head_slices, start, end) {
            // Reference fallback: per-member mergers exactly like
            // `query_group`, then fold.
            let mut mergers: Vec<SampleMerger> = matched
                .iter()
                .map(|_| SampleMerger::new(start, end))
                .collect();
            for (_, chunk) in &chunks {
                let dec = nullxor::GroupChunkDecoder::new(chunk)?;
                let ts = dec.decode_timestamps()?;
                for (mi, (slot, _)) in matched.iter().enumerate() {
                    if (*slot as usize) < dec.columns() {
                        let col = dec.decode_column(*slot as usize)?;
                        for (t, v) in ts.iter().zip(col) {
                            if let Some(v) = v {
                                mergers[mi].offer(*t, v);
                            }
                        }
                    }
                }
            }
            for (mi, head) in heads.iter().enumerate() {
                for &(t, v) in head {
                    mergers[mi].offer(t, v);
                }
            }
            for ((_, full), merger) in matched.into_iter().zip(mergers) {
                let samples = aggregate_step(kind, &merger.finish(), start, end, step_ms);
                if !samples.is_empty() {
                    out.push(SeriesResult {
                        id: gid,
                        labels: full,
                        samples,
                    });
                }
            }
            return Ok(out);
        }
        let mut wins: Vec<StepWindows> = matched
            .iter()
            .map(|_| StepWindows::new(start, end, step_ms))
            .collect();
        let mut ts_buf: Vec<Timestamp> = Vec::new();
        let (mut n_push, mut n_skip) = (0u64, 0u64);
        for ((_, chunk), st) in chunks.iter().zip(&stats) {
            let s = st
                .as_ref()
                .ok_or_else(|| Error::invalid("pushdown fold requires chunk stats"))?;
            if s.max_ts < start || s.min_ts >= end {
                n_skip += 1;
                continue;
            }
            // Whole-chunk value-bound skip for extremum queries: sound
            // only when the chunk sits inside the window every member is
            // currently filling and the group-wide bounds cannot beat
            // any member's running extremum.
            if matches!(kind, AggKind::Max | AggKind::Min) && s.min_ts >= start && s.max_ts < end {
                let bucket = wins[0].bucket_of(s.min_ts);
                let contained = bucket == wins[0].bucket_of(s.max_ts);
                let unbeatable = contained
                    && wins.iter().all(|w| {
                        matches!(w.buckets.last(), Some((b, acc)) if *b == bucket
                        && match kind {
                            AggKind::Max => {
                                agg::value_max(acc.max, s.max_v).to_bits()
                                    == acc.max.to_bits()
                            }
                            _ => {
                                agg::value_min(acc.min, s.min_v).to_bits()
                                    == acc.min.to_bits()
                            }
                        })
                    });
                if unbeatable {
                    n_skip += 1;
                    continue;
                }
            }
            // Group footers are group-wide, so per-member windows cannot
            // be meta-answered; decode the shared timestamps once and
            // stream-fold only the matched columns.
            let dec = nullxor::GroupChunkDecoder::new(chunk)?;
            dec.decode_timestamps_into(&mut ts_buf)?;
            n_push += 1;
            for (mi, (slot, _)) in matched.iter().enumerate() {
                if (*slot as usize) < dec.columns() {
                    let w = &mut wins[mi];
                    dec.for_each_in_column(*slot as usize, &ts_buf, |t, v| w.observe(t, v))?;
                }
            }
        }
        if n_push > 0 {
            self.obs.agg_pushdown_chunks.add(n_push);
        }
        if n_skip > 0 {
            self.obs.agg_skipped_chunks.add(n_skip);
        }
        for (mi, head) in heads.iter().enumerate() {
            for &(t, v) in head {
                wins[mi].observe(t, v);
            }
        }
        for ((_, full), w) in matched.into_iter().zip(wins) {
            let samples = w.finish(kind);
            if !samples.is_empty() {
                out.push(SeriesResult {
                    id: gid,
                    labels: full,
                    samples,
                });
            }
        }
        Ok(out)
    }

    /// Test-support hook: injects pre-encoded chunk bytes (any format
    /// version) straight into the tree, bypassing the head. The
    /// mixed-version tests use this to plant legacy pre-stats chunks
    /// next to framed ones.
    #[doc(hidden)]
    pub fn debug_put_chunk(
        &self,
        stream: u64,
        first_ts: Timestamp,
        last_ts: Timestamp,
        chunk: Vec<u8>,
    ) -> Result<()> {
        self.flush_chunk(stream, first_ts, last_ts, chunk, 0)
    }

    /// All values recorded for a tag key (label-values API).
    pub fn tag_values(&self, key: &str) -> Result<Vec<String>> {
        self.index.tag_values(key)
    }

    // --- observability ---------------------------------------------------------------

    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Every individual series' label set, sorted by label bytes (the
    /// `/series` and `/labels` endpoints of the self-monitoring plane).
    pub fn series_labels(&self) -> Vec<Labels> {
        let mut out: Vec<Labels> = self
            .series
            .values()
            .iter()
            .map(|obj| obj.lock().labels.clone())
            .collect();
        out.sort_by_cached_key(|l| l.to_bytes());
        out
    }

    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The storage environment (request counters, virtual cost clock).
    pub fn storage(&self) -> &StorageEnv {
        &self.env
    }

    /// The underlying tree's statistics.
    pub fn tree_stats(&self) -> tu_lsm::tree::TreeStats {
        self.tree.stats()
    }

    /// Engine root directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Drops cached data blocks (benchmarking: cold-block measurements).
    pub fn clear_block_cache(&self) {
        self.tree.block_cache().clear();
    }

    /// Memory breakdown for the paper's memory experiments.
    pub fn memory_stats(&self) -> MemoryStats {
        let objects_bytes: usize = self
            .series
            .values()
            .iter()
            .map(|o| o.lock().heap_bytes())
            .sum::<usize>()
            + self
                .groups
                .values()
                .iter()
                .map(|o| o.lock().heap_bytes())
                .sum::<usize>();
        MemoryStats {
            postings_bytes: self.index.heap_bytes(),
            objects_bytes,
            page_cache_bytes: self.page_cache.stats().resident_bytes as usize,
            memtable_bytes: self.tree.memtable_bytes(),
            block_cache_bytes: self.tree.block_cache().used_bytes(),
        }
    }

    /// Deterministic digest of the engine's complete logical state: every
    /// series and group with its labels, every chunk in the tree (key and
    /// raw bytes), and every buffered head sample, folded in id order.
    ///
    /// Used by the parallel-ingest tests and the `ingest_scaling` bench to
    /// pin that the on-disk state after a parallel ingest is byte-identical
    /// to the sequential path: same chunk boundaries, same compressed chunk
    /// bytes, same tree contents for every thread count.
    pub fn state_digest(&self) -> Result<String> {
        // FNV-1a 64; self-contained so the digest is stable across builds.
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let (lo, hi) = (i64::MIN / 2, i64::MAX / 2);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut ids: Vec<SeriesId> = self
            .series
            .entries()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let Some(obj) = self.series.get(&id) else {
                continue;
            };
            mix(&mut h, &id.to_le_bytes());
            let o = obj.lock();
            mix(&mut h, &o.labels.to_bytes());
            let head = o.head_samples(&self.series_arena)?;
            drop(o);
            for s in head {
                mix(&mut h, &s.t.to_le_bytes());
                mix(&mut h, &s.v.to_le_bytes());
            }
            for (start_ts, chunk) in self.tree.range_chunks(id, lo, hi)? {
                mix(&mut h, &start_ts.to_le_bytes());
                mix(&mut h, &chunk);
            }
        }
        let mut gids: Vec<GroupId> = self
            .groups
            .entries()
            .into_iter()
            .map(|(gid, _)| gid)
            .collect();
        gids.sort_unstable();
        for gid in gids {
            let Some(obj) = self.groups.get(&gid) else {
                continue;
            };
            mix(&mut h, &gid.to_le_bytes());
            let g = obj.lock();
            mix(&mut h, &g.group_tags.to_bytes());
            let mut heads = Vec::new();
            for (slot, unique) in g.members() {
                mix(&mut h, &slot.to_le_bytes());
                mix(&mut h, &unique.to_bytes());
                heads.push((
                    slot,
                    g.head_samples_of(&self.group_ts_arena, &self.group_val_arena, slot)?,
                ));
            }
            drop(g);
            for (slot, samples) in heads {
                mix(&mut h, &slot.to_le_bytes());
                for (t, v) in samples {
                    mix(&mut h, &t.to_le_bytes());
                    mix(&mut h, &v.to_le_bytes());
                }
            }
            for (start_ts, chunk) in self.tree.range_chunks(gid, lo, hi)? {
                mix(&mut h, &start_ts.to_le_bytes());
                mix(&mut h, &chunk);
            }
        }
        Ok(format!("{h:016x}"))
    }
}

impl Drop for TimeUnion {
    fn drop(&mut self) {
        self.stop_serving();
        self.stop_background();
    }
}

// --- WAL payload codecs ------------------------------------------------------

fn encode_sample(t: Timestamp, v: Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&t.to_le_bytes());
    out.extend_from_slice(&v.to_le_bytes());
    out
}

fn decode_sample(payload: &[u8]) -> Option<(Timestamp, Value)> {
    if payload.len() != 16 {
        return None;
    }
    Some((
        i64::from_le_bytes(payload[..8].try_into().ok()?),
        f64::from_le_bytes(payload[8..].try_into().ok()?),
    ))
}

fn encode_group_row(t: Timestamp, entries: &[(SeriesRef, Value)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + entries.len() * 12);
    out.extend_from_slice(&t.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (slot, v) in entries {
        out.extend_from_slice(&slot.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_group_row(payload: &[u8]) -> Option<(Timestamp, Vec<(SeriesRef, Value)>)> {
    if payload.len() < 12 {
        return None;
    }
    let t = i64::from_le_bytes(payload[..8].try_into().ok()?);
    let n = u32::from_le_bytes(payload[8..12].try_into().ok()?) as usize;
    if payload.len() != 12 + n * 12 {
        return None;
    }
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let off = 12 + i * 12;
        entries.push((
            u32::from_le_bytes(payload[off..off + 4].try_into().ok()?),
            f64::from_le_bytes(payload[off + 4..off + 12].try_into().ok()?),
        ));
    }
    Some((t, entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        Options {
            chunk_samples: 8,
            index_slots_per_segment: 4096,
            page_cache_bytes: 8 << 20,
            arena_chunks_per_file: 256,
            tree: TreeOptions {
                memtable_bytes: 32 << 10,
                l0_partition_ms: 30 * 60_000,
                l2_partition_ms: 2 * 3_600_000,
                max_sstable_bytes: 64 << 10,
                ..TreeOptions::default()
            },
            wal_batch_records: 16,
            ..Options::default()
        }
    }

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    fn engine() -> (tempfile::TempDir, TimeUnion) {
        let dir = tempfile::tempdir().unwrap();
        let e = TimeUnion::open(dir.path().join("db"), opts()).unwrap();
        (dir, e)
    }

    #[test]
    fn put_query_round_trip() {
        let (_d, e) = engine();
        let l = labels(&[("metric", "cpu"), ("host", "h1")]);
        let id = e.put(&l, 1_000, 0.5).unwrap();
        e.put_by_id(id, 2_000, 0.7).unwrap();
        let res = e
            .query(&[Selector::exact("metric", "cpu")], 0, 10_000)
            .unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].labels, l);
        assert_eq!(
            res[0].samples,
            vec![Sample::new(1_000, 0.5), Sample::new(2_000, 0.7)]
        );
    }

    #[test]
    fn slow_path_is_idempotent_on_labels() {
        let (_d, e) = engine();
        let l = labels(&[("metric", "cpu")]);
        let a = e.put(&l, 1_000, 1.0).unwrap();
        let b = e.put(&l, 2_000, 2.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(e.series_count(), 1);
    }

    #[test]
    fn unknown_fast_path_id_errors() {
        let (_d, e) = engine();
        assert!(e.put_by_id(424242, 0, 0.0).unwrap_err().is_not_found());
    }

    #[test]
    fn data_survives_chunk_seal_and_tree_flush() {
        let (_d, e) = engine();
        let l = labels(&[("metric", "cpu")]);
        let id = e.put(&l, 0, 0.0).unwrap();
        for i in 1..100i64 {
            e.put_by_id(id, i * 10_000, i as f64).unwrap();
        }
        e.flush_all().unwrap();
        let res = e
            .query(&[Selector::exact("metric", "cpu")], 0, 1_000_000)
            .unwrap();
        assert_eq!(res[0].samples.len(), 100);
        assert!(res[0].samples.windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    fn group_round_trip_with_selectors() {
        let (_d, e) = engine();
        let gt = labels(&[("host", "h1")]);
        let members = vec![labels(&[("metric", "cpu")]), labels(&[("metric", "mem")])];
        let (gid, refs) = e.put_group(&gt, &members, 1_000, &[0.1, 0.2]).unwrap();
        e.put_group_fast(gid, &refs, 2_000, &[0.3, 0.4]).unwrap();
        // Selector on the shared group tag returns both members.
        let res = e
            .query(&[Selector::exact("host", "h1")], 0, 10_000)
            .unwrap();
        assert_eq!(res.len(), 2);
        // Selector on a member tag returns just that member.
        let res = e
            .query(
                &[
                    Selector::exact("host", "h1"),
                    Selector::exact("metric", "mem"),
                ],
                0,
                10_000,
            )
            .unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(
            res[0].samples,
            vec![Sample::new(1_000, 0.2), Sample::new(2_000, 0.4)]
        );
    }

    #[test]
    fn group_missing_members_read_as_absent() {
        let (_d, e) = engine();
        let gt = labels(&[("host", "h1")]);
        let (gid, refs) = e
            .put_group(
                &gt,
                &[labels(&[("m", "a")]), labels(&[("m", "b")])],
                10,
                &[1.0, 2.0],
            )
            .unwrap();
        // Next round only member a reports.
        e.put_group_fast(gid, &refs[..1], 20, &[3.0]).unwrap();
        let res = e
            .query(
                &[Selector::exact("host", "h1"), Selector::exact("m", "b")],
                0,
                100,
            )
            .unwrap();
        assert_eq!(res[0].samples, vec![Sample::new(10, 2.0)]);
    }

    #[test]
    fn group_survives_seal_to_tree() {
        let (_d, e) = engine();
        let gt = labels(&[("host", "h1")]);
        let members: Vec<Labels> = (0..5)
            .map(|i| labels(&[("metric", &format!("m{i}"))]))
            .collect();
        let (gid, refs) = e.put_group(&gt, &members, 0, &[0.0; 5]).unwrap();
        for round in 1..50i64 {
            let vals: Vec<f64> = (0..5).map(|m| (round * 10 + m) as f64).collect();
            e.put_group_fast(gid, &refs, round * 30_000, &vals).unwrap();
        }
        e.flush_all().unwrap();
        let res = e
            .query(
                &[
                    Selector::exact("host", "h1"),
                    Selector::exact("metric", "m3"),
                ],
                0,
                i64::MAX / 4,
            )
            .unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].samples.len(), 50);
        assert_eq!(res[0].samples[7].v, 73.0);
    }

    #[test]
    fn out_of_order_sample_older_than_head() {
        let (_d, e) = engine();
        let l = labels(&[("metric", "cpu")]);
        let id = e.put(&l, 100_000, 1.0).unwrap();
        e.put_by_id(id, 200_000, 2.0).unwrap();
        // Way in the past: early-flushed to the tree.
        e.put_by_id(id, 5_000, 0.5).unwrap();
        let res = e
            .query(&[Selector::exact("metric", "cpu")], 0, 300_000)
            .unwrap();
        let ts: Vec<i64> = res[0].samples.iter().map(|s| s.t).collect();
        assert_eq!(ts, vec![5_000, 100_000, 200_000]);
    }

    #[test]
    fn regex_selectors_work_end_to_end() {
        let (_d, e) = engine();
        for m in ["disk_read", "disk_write", "cpu_user"] {
            e.put(&labels(&[("metric", m)]), 1_000, 1.0).unwrap();
        }
        let res = e
            .query(&[Selector::regex("metric", "disk_.*").unwrap()], 0, 10_000)
            .unwrap();
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn recovery_restores_unflushed_samples() {
        let dir = tempfile::tempdir().unwrap();
        let l = labels(&[("metric", "cpu"), ("host", "h9")]);
        {
            let e = TimeUnion::open(dir.path().join("db"), opts()).unwrap();
            let id = e.put(&l, 1_000, 1.0).unwrap();
            for i in 2..20i64 {
                e.put_by_id(id, i * 1_000, i as f64).unwrap();
            }
            e.sync().unwrap();
            // Dropped without flush_all: head samples only exist in the WAL.
        }
        let e = TimeUnion::open(dir.path().join("db"), opts()).unwrap();
        assert_eq!(e.series_count(), 1);
        let res = e
            .query(&[Selector::exact("host", "h9")], 0, 100_000)
            .unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].samples.len(), 19);
        // Fast path still works with the recovered ID.
        let id = res[0].id;
        e.put_by_id(id, 50_000, 50.0).unwrap();
    }

    #[test]
    fn recovery_restores_groups() {
        let dir = tempfile::tempdir().unwrap();
        let gt = labels(&[("host", "h1")]);
        let members = vec![labels(&[("m", "a")]), labels(&[("m", "b")])];
        {
            let e = TimeUnion::open(dir.path().join("db"), opts()).unwrap();
            let (gid, refs) = e.put_group(&gt, &members, 10, &[1.0, 2.0]).unwrap();
            e.put_group_fast(gid, &refs, 20, &[3.0, 4.0]).unwrap();
            e.sync().unwrap();
        }
        let e = TimeUnion::open(dir.path().join("db"), opts()).unwrap();
        assert_eq!(e.group_count(), 1);
        let res = e
            .query(
                &[Selector::exact("host", "h1"), Selector::exact("m", "b")],
                0,
                100,
            )
            .unwrap();
        assert_eq!(
            res[0].samples,
            vec![Sample::new(10, 2.0), Sample::new(20, 4.0)]
        );
    }

    #[test]
    fn retention_drops_old_series() {
        use tu_common::clock::SimClock;
        let dir = tempfile::tempdir().unwrap();
        let clock = SimClock::new(0);
        let mut o = opts();
        o.retention_ms = Some(1_000_000);
        o.clock = Arc::new(clock.clone());
        let e = TimeUnion::open(dir.path().join("db"), o).unwrap();
        e.put(&labels(&[("metric", "old")]), 1_000, 1.0).unwrap();
        e.put(&labels(&[("metric", "new")]), 5_000_000, 1.0)
            .unwrap();
        clock.set(6_000_000);
        let (_, objects) = e.apply_retention().unwrap();
        assert_eq!(objects, 1);
        assert_eq!(e.series_count(), 1);
        assert!(e
            .query(&[Selector::exact("metric", "old")], 0, i64::MAX / 4)
            .unwrap()
            .is_empty());
        assert_eq!(
            e.query(&[Selector::exact("metric", "new")], 0, i64::MAX / 4)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn tag_values_lists_values() {
        let (_d, e) = engine();
        for h in ["h2", "h1"] {
            e.put(&labels(&[("host", h), ("metric", "cpu")]), 0, 1.0)
                .unwrap();
        }
        assert_eq!(e.tag_values("host").unwrap(), vec!["h1", "h2"]);
    }

    #[test]
    fn memory_stats_have_expected_shape() {
        let (_d, e) = engine();
        for i in 0..200 {
            e.put(
                &labels(&[("host", &format!("h{i}")), ("metric", "cpu")]),
                0,
                1.0,
            )
            .unwrap();
        }
        let m = e.memory_stats();
        assert!(m.postings_bytes > 0);
        assert!(m.objects_bytes > 0);
        assert!(m.page_cache_bytes > 0, "trie+heads are file-backed");
        assert!(m.total() >= m.postings_bytes + m.objects_bytes);
    }

    #[test]
    fn background_worker_drives_maintenance() {
        let dir = tempfile::tempdir().unwrap();
        let mut o = opts();
        o.inline_maintenance = false;
        o.tree.memtable_bytes = 4 << 10; // seal early so the worker has work
        let e = Arc::new(TimeUnion::open(dir.path().join("db"), o).unwrap());
        e.start_background(std::time::Duration::from_millis(5))
            .unwrap();
        let id = e.put(&labels(&[("metric", "bg")]), 0, 0.0).unwrap();
        for i in 1..3_000i64 {
            e.put_by_id(id, i * 1_000, i as f64).unwrap();
        }
        // Wait for the worker to flush the sealed memtables.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if e.tree_stats().flushes > 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "worker never flushed: {:?}",
                e.tree_stats()
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let res = e
            .query(&[Selector::exact("metric", "bg")], 0, 4_000_000)
            .unwrap();
        assert_eq!(res[0].samples.len(), 3_000);
        e.stop_background();
    }

    #[test]
    fn health_report_tracks_engine_state() {
        let (_d, e) = engine();
        let r = e.health_report();
        assert!(r.ready);
        assert!(r.healthy());
        assert!(r.checks.iter().any(|c| c.name == "wal"));
        assert!(r.checks.iter().any(|c| c.name == "flush_backlog"));
        assert!(r.checks.iter().any(|c| c.name == "memtable"));
        // Draining flips both readiness and health.
        e.begin_shutdown();
        let r = e.health_report();
        assert!(!r.ready);
        assert!(!r.healthy());
        assert!(r
            .checks
            .iter()
            .any(|c| c.name == "shutdown" && c.health == tu_obs::Health::Unhealthy));
    }

    #[test]
    fn serve_plane_binds_and_stops() {
        let dir = tempfile::tempdir().unwrap();
        let mut o = opts();
        o.serve_addr = Some("127.0.0.1:0".to_string());
        let e = Arc::new(TimeUnion::open(dir.path().join("db"), o).unwrap());
        let addr = e.serve_if_configured().unwrap().expect("configured");
        assert!(addr.port() != 0, "port 0 resolves to a real port");
        // Idempotent: a second call reuses the bound plane.
        assert_eq!(e.start_serving("127.0.0.1:0").unwrap(), addr);
        assert!(e.monitor().is_some());
        e.stop_serving();
        assert!(e.monitor().is_none());
        // And nothing serves when not configured.
        let dir2 = tempfile::tempdir().unwrap();
        let e2 = Arc::new(TimeUnion::open(dir2.path().join("db"), opts()).unwrap());
        assert!(e2.serve_if_configured().unwrap().is_none());
    }

    #[test]
    fn empty_labels_rejected() {
        let (_d, e) = engine();
        assert!(e.put(&Labels::new(), 0, 0.0).is_err());
        assert!(e
            .put_group(&Labels::new(), &[labels(&[("a", "b")])], 0, &[0.0])
            .is_err());
        assert!(e
            .put_group(&labels(&[("a", "b")]), &[labels(&[("c", "d")])], 0, &[])
            .is_err());
    }

    /// Reference for the pushdown path: materialize with `query`, fold
    /// with `aggregate_step`, drop members with no defined windows.
    fn reference_aggregate(
        e: &TimeUnion,
        sel: &[Selector],
        kind: AggKind,
        start: Timestamp,
        end: Timestamp,
        step_ms: i64,
    ) -> QueryResult {
        e.query(sel, start, end)
            .unwrap()
            .into_iter()
            .filter_map(|s| {
                let samples = aggregate_step(kind, &s.samples, start, end, step_ms);
                (!samples.is_empty()).then(|| SeriesResult {
                    id: s.id,
                    labels: s.labels,
                    samples,
                })
            })
            .collect()
    }

    fn assert_bit_identical(got: &QueryResult, want: &QueryResult, what: &str) {
        assert_eq!(got.len(), want.len(), "{what}: series count");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.labels, w.labels, "{what}: labels");
            assert_eq!(
                g.samples.len(),
                w.samples.len(),
                "{what}: rows of {}",
                g.labels
            );
            for (a, b) in g.samples.iter().zip(&w.samples) {
                assert_eq!(a.t, b.t, "{what}: window ts of {}", g.labels);
                assert_eq!(
                    a.v.to_bits(),
                    b.v.to_bits(),
                    "{what}: value bits at t={} of {} ({} vs {})",
                    a.t,
                    g.labels,
                    a.v,
                    b.v
                );
            }
        }
    }

    #[test]
    fn query_aggregate_matches_reference_and_uses_metadata() {
        let (_d, e) = engine();
        // chunk_samples = 8, 1s interval: chunk k covers [8k, 8k+7] s.
        // A 16s step holds exactly two sealed chunks per window.
        let l = labels(&[("metric", "cpu"), ("host", "h1")]);
        let id = e.put(&l, 0, 5.0).unwrap();
        for i in 1..64 {
            // First chunk of each window carries the maximum (5.0).
            let v = if i % 16 == 0 {
                5.0
            } else {
                1.0 + (i % 7) as f64 * 0.25
            };
            e.put_by_id(id, i * 1_000, v).unwrap();
        }
        let sel = [Selector::exact("metric", "cpu")];
        let meta0 = tu_obs::counter("core.query.agg.meta_answered").get();
        let skip0 = tu_obs::counter("core.query.agg.skipped_chunks").get();
        for kind in AggKind::ALL {
            let got = e.query_aggregate(&sel, kind, 0, 64_000, 16_000).unwrap();
            let want = reference_aggregate(&e, &sel, kind, 0, 64_000, 16_000);
            assert!(!got.is_empty(), "{kind:?} returned rows");
            assert_bit_identical(&got, &want, kind.name());
        }
        // Max/Min/Count/Sum/Avg meta-answer fully-covered chunks.
        assert!(tu_obs::counter("core.query.agg.meta_answered").get() > meta0);

        // A query window starting mid-stream time-skips chunks from the
        // slack region entirely.
        let got = e
            .query_aggregate(&sel, AggKind::Max, 32_000, 64_000, 16_000)
            .unwrap();
        let want = reference_aggregate(&e, &sel, AggKind::Max, 32_000, 64_000, 16_000);
        assert_bit_identical(&got, &want, "max mid-stream");
        assert!(tu_obs::counter("core.query.agg.skipped_chunks").get() > skip0);

        // Invalid step is rejected.
        assert!(e.query_aggregate(&sel, AggKind::Max, 0, 1, 0).is_err());
    }

    #[test]
    fn query_aggregate_handles_ooo_nan_and_head_overlap() {
        let (_d, e) = engine();
        let l = labels(&[("metric", "mem"), ("host", "h2")]);
        let id = e.put(&l, 0, f64::NAN).unwrap();
        // Out-of-order and duplicate timestamps force patch chunks and
        // newest-wins merges — the pushdown plan must fall back and stay
        // bit-identical.
        for (t, v) in [
            (10_000, 1.0),
            (20_000, -0.0),
            (5_000, 3.0),
            (20_000, 2.0),
            (30_000, f64::NAN),
            (15_000, 7.0),
            (40_000, 0.0),
        ] {
            e.put_by_id(id, t, v).unwrap();
        }
        let sel = [Selector::exact("metric", "mem")];
        for kind in AggKind::ALL {
            let got = e.query_aggregate(&sel, kind, 0, 60_000, 15_000).unwrap();
            let want = reference_aggregate(&e, &sel, kind, 0, 60_000, 15_000);
            assert_bit_identical(&got, &want, kind.name());
        }
    }

    #[test]
    fn query_aggregate_reads_legacy_prestats_chunks() {
        let (_d, e) = engine();
        let l = labels(&[("metric", "disk"), ("host", "h3")]);
        let id = e.put(&l, 100_000, 1.0).unwrap();
        // Plant a legacy (pre-stats envelope) chunk behind the head.
        let legacy: Vec<Sample> = (0..8).map(|i| Sample::new(i * 1_000, i as f64)).collect();
        let bytes = gorilla::compress_chunk(&legacy).unwrap();
        e.debug_put_chunk(id, 0, 7_000, bytes).unwrap();
        let sel = [Selector::exact("metric", "disk")];
        for kind in AggKind::ALL {
            let got = e.query_aggregate(&sel, kind, 0, 200_000, 10_000).unwrap();
            let want = reference_aggregate(&e, &sel, kind, 0, 200_000, 10_000);
            assert_bit_identical(&got, &want, kind.name());
        }
        // The legacy samples really are visible.
        let q = e.query(&sel, 0, 200_000).unwrap();
        assert_eq!(q[0].samples.len(), 9);
    }

    #[test]
    fn query_aggregate_groups_match_reference() {
        let (_d, e) = engine();
        let gt = labels(&[("job", "node")]);
        let members: Vec<Labels> = (0..3)
            .map(|i| labels(&[("host", &format!("h{i}"))]))
            .collect();
        let (gid, refs) = e.put_group(&gt, &members, 0, &[0.0, 10.0, -1.0]).unwrap();
        for round in 1..40 {
            let t = round * 1_000;
            let vals: Vec<Value> = (0..3)
                .map(|m| ((round * (m + 1)) % 9) as f64 - 2.0)
                .collect();
            if round % 5 == 0 {
                // Some rounds miss a member (NULL column entries).
                e.put_group_fast(gid, &refs[..2], t, &vals[..2]).unwrap();
            } else {
                e.put_group_fast(gid, &refs, t, &vals).unwrap();
            }
        }
        let sel = [Selector::exact("job", "node")];
        for kind in AggKind::ALL {
            let got = e.query_aggregate(&sel, kind, 0, 40_000, 8_000).unwrap();
            let want = reference_aggregate(&e, &sel, kind, 0, 40_000, 8_000);
            assert!(!got.is_empty(), "{kind:?} returned rows");
            assert_bit_identical(&got, &want, kind.name());
        }
        // Selecting one member decodes only its column, still identical.
        let one = [Selector::exact("host", "h1")];
        let got = e
            .query_aggregate(&one, AggKind::Avg, 0, 40_000, 8_000)
            .unwrap();
        let want = reference_aggregate(&e, &one, AggKind::Avg, 0, 40_000, 8_000);
        assert_bit_identical(&got, &want, "avg one member");
    }

    #[test]
    fn query_aggregate_profiled_carries_agg_counters() {
        let (_d, e) = engine();
        let l = labels(&[("metric", "net")]);
        let id = e.put(&l, 0, 1.0).unwrap();
        for i in 1..32 {
            e.put_by_id(id, i * 1_000, i as f64).unwrap();
        }
        let sel = [Selector::exact("metric", "net")];
        let (rows, profile) = e
            .query_aggregate_profiled(&sel, AggKind::Sum, 0, 32_000, 16_000)
            .unwrap();
        assert!(!rows.is_empty());
        assert!(profile.stages.iter().any(|s| s.name == "fanout"));
        let meta = profile.counters.get("core.query.agg.meta_answered");
        assert!(
            meta.copied().unwrap_or(0) > 0,
            "profile carries agg counters: {:?}",
            profile.counters
        );
    }
}
