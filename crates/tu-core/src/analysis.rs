//! The grouping cost model of §3.1 (Table 1, Equations 1–6).
//!
//! Backs the `figures grouping-analysis` experiment and the guidance the
//! paper gives users: grouping saves index space when
//! `S_g > (T_u/T_g · S_p + S_t) / (S_p + S_t)`, and wins long-range
//! queries when the target series collapse into fewer groups.

/// Parameters of the grouping analysis (Table 1).
#[derive(Debug, Clone, Copy)]
pub struct GroupingModel {
    /// `N` — number of timeseries.
    pub n: f64,
    /// `T` — average tags per timeseries.
    pub t: f64,
    /// `S_p` — bytes per posting-list entry.
    pub s_p: f64,
    /// `S_t` — bytes per tag.
    pub s_t: f64,
    /// `S_g` — average series per group.
    pub s_g: f64,
    /// `T_g` — average group tags per group.
    pub t_g: f64,
    /// `T_u` — average unique tags per group (after dedup).
    pub t_u: f64,
}

impl GroupingModel {
    /// The TSBS DevOps constants quoted in §3.1: `S_g = 101, T_u = 118,
    /// T_g = 1, S_p = 8, S_t = 15`. `T` for DevOps hosts is ~11 tags
    /// (10 host tags + the metric name tag).
    pub fn tsbs_devops(n: f64) -> Self {
        GroupingModel {
            n,
            t: 11.0,
            s_p: 8.0,
            s_t: 15.0,
            s_g: 101.0,
            t_g: 1.0,
            t_u: 118.0,
        }
    }

    /// Equation 1: index cost without grouping.
    pub fn cost_without_grouping(&self) -> f64 {
        self.n * self.t * (self.s_p + self.s_t)
    }

    /// Equation 2: index cost with grouping.
    pub fn cost_with_grouping(&self) -> f64 {
        let groups = self.n / self.s_g;
        let postings = groups * self.t_u * self.s_p + (self.t - self.t_g) * self.n * self.s_p;
        let tags = groups * self.t_g * self.s_t + (self.t - self.t_g) * self.n * self.s_t;
        postings + tags
    }

    /// The paper's break-even condition on group size: grouping saves
    /// index space when `S_g` exceeds this threshold.
    pub fn break_even_group_size(&self) -> f64 {
        ((self.t_u / self.t_g) * self.s_p + self.s_t) / (self.s_p + self.s_t)
    }
}

/// Query cost parameters (Equations 3–6).
#[derive(Debug, Clone, Copy)]
pub struct QueryCostModel {
    /// `Cost_EBS` — seconds per byte read from fast storage.
    pub cost_ebs_per_byte: f64,
    /// `Cost_S3` — seconds per Get request to slow storage.
    pub cost_s3_per_get: f64,
    /// `P` — time partitions covered by the query.
    pub partitions: f64,
    /// `S_data` — raw bytes per series per partition.
    pub s_data: f64,
    /// `S_block` — SSTable data block size (4096).
    pub s_block: f64,
    /// `L` — matched individual series.
    pub located_series: f64,
    /// `G` — matched groups.
    pub located_groups: f64,
    /// `S_g` — series per group.
    pub group_size: f64,
    /// `R_1` — compression ratio without grouping.
    pub r1: f64,
    /// `R_2` — compression ratio with grouping.
    pub r2: f64,
}

impl QueryCostModel {
    /// Equation 3: ungrouped query over fast storage.
    pub fn ungrouped_fast(&self) -> f64 {
        self.located_series * self.partitions * (self.s_data / self.r1) * self.cost_ebs_per_byte
    }

    /// Equation 4: ungrouped query over slow storage.
    pub fn ungrouped_slow(&self) -> f64 {
        self.located_series
            * self.partitions
            * (self.s_data / (self.s_block * self.r1)).ceil()
            * self.cost_s3_per_get
    }

    /// Equation 5: grouped query over fast storage.
    pub fn grouped_fast(&self) -> f64 {
        self.located_groups
            * self.partitions
            * (self.s_data * self.group_size / self.r2)
            * self.cost_ebs_per_byte
    }

    /// Equation 6: grouped query over slow storage.
    pub fn grouped_slow(&self) -> f64 {
        self.located_groups
            * self.partitions
            * (self.s_data * self.group_size / (self.s_block * self.r2)).ceil()
            * self.cost_s3_per_get
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsbs_devops_grouping_saves_index_space() {
        // §3.1: the break-even holds for the DevOps dataset.
        let m = GroupingModel::tsbs_devops(1_000_000.0);
        assert!(m.s_g > m.break_even_group_size());
        assert!(m.cost_with_grouping() < m.cost_without_grouping());
    }

    #[test]
    fn tiny_groups_do_not_pay_off() {
        let m = GroupingModel {
            s_g: 2.0,
            t_u: 118.0,
            t_g: 1.0,
            ..GroupingModel::tsbs_devops(1_000_000.0)
        };
        assert!(m.s_g < m.break_even_group_size());
        assert!(m.cost_with_grouping() > m.cost_without_grouping());
    }

    #[test]
    fn break_even_matches_direct_comparison() {
        // Sweep group sizes; the sign of the cost difference must flip
        // exactly at the break-even threshold.
        let base = GroupingModel::tsbs_devops(100_000.0);
        let be = base.break_even_group_size();
        for sg in [be * 0.5, be * 0.9, be * 1.1, be * 2.0] {
            let m = GroupingModel { s_g: sg, ..base };
            let saves = m.cost_with_grouping() < m.cost_without_grouping();
            assert_eq!(saves, sg > be, "at S_g = {sg}");
        }
    }

    fn paper_query_model(located_series: f64, located_groups: f64) -> QueryCostModel {
        QueryCostModel {
            cost_ebs_per_byte: 1.0 / (250.0 * 1024.0 * 1024.0),
            cost_s3_per_get: 0.02,
            partitions: 12.0,
            s_data: 16.0 * 240.0, // 2h at 30s, 16B raw per sample
            s_block: 4096.0,
            located_series,
            located_groups,
            group_size: 101.0,
            r1: 10.0, // §3.1: 10x individual vs 35x grouped in TSBS
            r2: 35.0,
        }
    }

    #[test]
    fn long_range_slow_queries_favour_grouping_when_g_lt_l() {
        // TSBS 5-1-24: 5 metrics of 1 host -> L=5 series but G=1 group.
        let m = paper_query_model(5.0, 1.0);
        assert!(
            m.grouped_slow() < m.ungrouped_slow(),
            "grouped {} vs ungrouped {}",
            m.grouped_slow(),
            m.ungrouped_slow()
        );
    }

    #[test]
    fn single_series_slow_queries_favour_ungrouped() {
        // TSBS 1-1-24: L=1 and G=1 -> the group must still fetch the whole
        // group's data, ceil() makes it at least as expensive.
        let m = paper_query_model(1.0, 1.0);
        assert!(m.grouped_slow() >= m.ungrouped_slow());
    }

    #[test]
    fn fast_tier_queries_scale_with_data_volume() {
        // Equations 3/5: on EBS the cost tracks bytes, so grouping loses
        // whenever it reads more data than the matched series alone.
        let m = paper_query_model(5.0, 1.0);
        let grouped_bytes = m.group_size / m.r2;
        let ungrouped_bytes = 5.0 / m.r1;
        assert_eq!(
            m.grouped_fast() > m.ungrouped_fast(),
            grouped_bytes > ungrouped_bytes
        );
    }
}
