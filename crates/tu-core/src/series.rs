//! Per-series memory objects (§3.2).
//!
//! A series' open ("head") chunk batches a small number of samples (32 by
//! default) before being compressed and flushed into the LSM-tree. The
//! head samples live in a file-backed [`ChunkArena`] slot — not on the
//! heap — so the page cache can swap cold series out, which is what keeps
//! TimeUnion's memory flat at millions of series (Figure 16).
//!
//! Slot layout: `count × (i64 LE timestamp, f64 LE value)`, row-sorted by
//! timestamp. Raw (uncompressed) storage is used for the open chunk so
//! out-of-order samples within the head range can be inserted or replaced
//! in place (§3.1 case 4); compression happens once, at seal time.

use tu_common::{Error, Labels, Result, Sample, SeriesId, Timestamp, Value};
use tu_compress::gorilla;
use tu_mmap::{ChunkArena, ChunkHandle};

const ROW: usize = 16;

/// Result of inserting one sample into a series head.
#[derive(Debug, PartialEq)]
pub enum HeadInsert {
    /// Stored in the open chunk.
    Buffered,
    /// Stored, and the chunk filled up: the sealed chunk must be flushed
    /// to the LSM-tree under `(first_ts, bytes)`. `last_ts` lets the
    /// engine track the maximum chunk time span for query slack.
    Sealed {
        first_ts: Timestamp,
        last_ts: Timestamp,
        chunk: Vec<u8>,
    },
    /// The sample is older than the open chunk; the engine must write it
    /// to the tree directly (early flush of out-of-order data, §3.1).
    OlderThanHead,
}

/// The memory object of one individual timeseries.
#[derive(Debug)]
pub struct SeriesObject {
    pub id: SeriesId,
    pub labels: Labels,
    handle: ChunkHandle,
    /// WAL sequence number of the newest logged sample.
    pub seq: u64,
    /// Newest timestamp ever accepted (drives retention).
    pub last_ts: Timestamp,
    /// Cached head state, mirroring the arena slot.
    head_count: u16,
    head_first: Timestamp,
    head_last: Timestamp,
}

fn decode_rows(payload: &[u8]) -> Result<Vec<Sample>> {
    if payload.len() % ROW != 0 {
        return Err(Error::corruption("series head slot misaligned"));
    }
    Ok(payload
        .chunks_exact(ROW)
        .map(|r| {
            Sample::new(
                tu_common::bytes::i64_le(&r[..8]),
                tu_common::bytes::f64_le(&r[8..]),
            )
        })
        .collect())
}

fn encode_rows(samples: &[Sample]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * ROW);
    for s in samples {
        out.extend_from_slice(&s.t.to_le_bytes());
        out.extend_from_slice(&s.v.to_le_bytes());
    }
    out
}

/// Slot size needed for `chunk_samples` samples (plus the arena's length
/// prefix).
pub fn slot_size(chunk_samples: usize) -> usize {
    chunk_samples * ROW + 2
}

impl SeriesObject {
    /// Creates the object, allocating its head slot.
    pub fn new(id: SeriesId, labels: Labels, arena: &ChunkArena) -> Result<Self> {
        let handle = arena.alloc()?;
        arena.write(handle, &[])?;
        Ok(SeriesObject {
            id,
            labels,
            handle,
            seq: 0,
            last_ts: i64::MIN,
            head_count: 0,
            head_first: 0,
            head_last: i64::MIN,
        })
    }

    /// Number of samples in the open chunk.
    pub fn head_len(&self) -> u16 {
        self.head_count
    }

    /// First timestamp of the open chunk, if any.
    pub fn head_first_ts(&self) -> Option<Timestamp> {
        (self.head_count > 0).then_some(self.head_first)
    }

    /// Inserts a sample. `cap` is the seal threshold (32 in the paper).
    pub fn insert(
        &mut self,
        arena: &ChunkArena,
        t: Timestamp,
        v: Value,
        cap: usize,
    ) -> Result<HeadInsert> {
        if self.head_count > 0 && t < self.head_first {
            return Ok(HeadInsert::OlderThanHead);
        }
        if self.head_count == 0 || t > self.head_last {
            // In-order append (the overwhelmingly common case): write just
            // the new row, no read-modify-write of the slot.
            let mut row = [0u8; ROW];
            row[..8].copy_from_slice(&t.to_le_bytes());
            row[8..].copy_from_slice(&v.to_le_bytes());
            if self.head_count == 0 {
                arena.write(self.handle, &row)?;
                self.head_first = t;
            } else {
                arena.append(self.handle, self.head_count as usize * ROW, &row)?;
            }
            self.head_count += 1;
            self.head_last = t;
        } else {
            // Out-of-order within the head range, or duplicate timestamp:
            // decode, fix up, rewrite (rare path, §3.1 case 4).
            let mut rows = decode_rows(&arena.read(self.handle)?)?;
            match rows.binary_search_by_key(&t, |s| s.t) {
                Ok(i) => rows[i].v = v, // duplicate timestamp: replace
                Err(i) => rows.insert(i, Sample::new(t, v)),
            }
            let (first, last) = match (rows.first(), rows.last()) {
                (Some(f), Some(l)) => (f.t, l.t),
                _ => return Err(Error::corruption("series head empty after insert")),
            };
            self.head_first = first;
            self.head_last = last;
            self.head_count = rows.len() as u16;
            arena.write(self.handle, &encode_rows(&rows))?;
        }
        self.last_ts = self.last_ts.max(t);
        if (self.head_count as usize) >= cap {
            let rows = decode_rows(&arena.read(self.handle)?)?;
            let chunk = gorilla::compress_chunk_framed(&rows)?;
            let first_ts = self.head_first;
            let last_ts = self.head_last;
            arena.write(self.handle, &[])?;
            self.head_count = 0;
            self.head_last = i64::MIN;
            return Ok(HeadInsert::Sealed {
                first_ts,
                last_ts,
                chunk,
            });
        }
        Ok(HeadInsert::Buffered)
    }

    /// Seals whatever is buffered (shutdown, forced flush). Returns
    /// `(first_ts, last_ts, chunk)`, or `None` when the head is empty.
    pub fn seal(&mut self, arena: &ChunkArena) -> Result<Option<(Timestamp, Timestamp, Vec<u8>)>> {
        if self.head_count == 0 {
            return Ok(None);
        }
        let rows = decode_rows(&arena.read(self.handle)?)?;
        let chunk = gorilla::compress_chunk_framed(&rows)?;
        let first_ts = self.head_first;
        let last_ts = self.head_last;
        arena.write(self.handle, &[])?;
        self.head_count = 0;
        self.head_last = i64::MIN;
        Ok(Some((first_ts, last_ts, chunk)))
    }

    /// The buffered samples (for queries over recent data).
    pub fn head_samples(&self, arena: &ChunkArena) -> Result<Vec<Sample>> {
        if self.head_count == 0 {
            return Ok(Vec::new());
        }
        decode_rows(&arena.read(self.handle)?)
    }

    /// Releases the head slot (retention purge of the whole series).
    pub fn release(self, arena: &ChunkArena) -> Result<()> {
        arena.free(self.handle)
    }

    /// Rough heap footprint of the object itself (the head data is
    /// file-backed and accounted by the page cache).
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.labels.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tu_mmap::pagecache::{PageCache, PAGE_SIZE};

    fn arena(cap: usize) -> (tempfile::TempDir, ChunkArena) {
        let dir = tempfile::tempdir().unwrap();
        let cache = PageCache::new(128 * PAGE_SIZE);
        let a = ChunkArena::open(
            Arc::clone(&cache),
            dir.path().join("heads"),
            slot_size(cap),
            64,
        )
        .unwrap();
        (dir, a)
    }

    fn obj(a: &ChunkArena) -> SeriesObject {
        SeriesObject::new(1, Labels::from_pairs([("m", "cpu")]), a).unwrap()
    }

    #[test]
    fn buffered_until_cap_then_seals() {
        let (_d, a) = arena(4);
        let mut s = obj(&a);
        for i in 0..3 {
            assert_eq!(
                s.insert(&a, i * 10, i as f64, 4).unwrap(),
                HeadInsert::Buffered
            );
        }
        assert_eq!(s.head_len(), 3);
        match s.insert(&a, 30, 3.0, 4).unwrap() {
            HeadInsert::Sealed {
                first_ts,
                last_ts,
                chunk,
            } => {
                assert_eq!(last_ts, 30);
                assert_eq!(first_ts, 0);
                let samples = gorilla::decompress_chunk(&chunk).unwrap();
                assert_eq!(samples.len(), 4);
                assert_eq!(samples[3], Sample::new(30, 3.0));
            }
            other => panic!("expected seal, got {other:?}"),
        }
        assert_eq!(s.head_len(), 0, "head cleared after seal");
    }

    #[test]
    fn out_of_order_within_head_inserts_in_place() {
        let (_d, a) = arena(8);
        let mut s = obj(&a);
        s.insert(&a, 100, 1.0, 8).unwrap();
        s.insert(&a, 300, 3.0, 8).unwrap();
        s.insert(&a, 200, 2.0, 8).unwrap(); // late but within head
        let got = s.head_samples(&a).unwrap();
        assert_eq!(
            got,
            vec![
                Sample::new(100, 1.0),
                Sample::new(200, 2.0),
                Sample::new(300, 3.0)
            ]
        );
    }

    #[test]
    fn duplicate_timestamp_replaces_value() {
        let (_d, a) = arena(8);
        let mut s = obj(&a);
        s.insert(&a, 100, 1.0, 8).unwrap();
        s.insert(&a, 100, 9.0, 8).unwrap();
        assert_eq!(s.head_samples(&a).unwrap(), vec![Sample::new(100, 9.0)]);
        assert_eq!(s.head_len(), 1);
    }

    #[test]
    fn older_than_head_is_signalled_not_stored() {
        let (_d, a) = arena(8);
        let mut s = obj(&a);
        s.insert(&a, 1000, 1.0, 8).unwrap();
        assert_eq!(
            s.insert(&a, 500, 0.5, 8).unwrap(),
            HeadInsert::OlderThanHead
        );
        assert_eq!(s.head_len(), 1);
        assert_eq!(s.last_ts, 1000);
    }

    #[test]
    fn manual_seal_flushes_partial_head() {
        let (_d, a) = arena(32);
        let mut s = obj(&a);
        assert!(s.seal(&a).unwrap().is_none());
        s.insert(&a, 10, 1.0, 32).unwrap();
        s.insert(&a, 20, 2.0, 32).unwrap();
        let (first, last, chunk) = s.seal(&a).unwrap().expect("sealed");
        assert_eq!((first, last), (10, 20));
        assert_eq!(gorilla::decompress_chunk(&chunk).unwrap().len(), 2);
        assert_eq!(s.head_len(), 0);
    }

    #[test]
    fn head_survives_page_cache_pressure() {
        let dir = tempfile::tempdir().unwrap();
        // One-page cache: every other access evicts.
        let cache = PageCache::new(PAGE_SIZE);
        let a = ChunkArena::open(cache, dir.path().join("h"), slot_size(32), 8).unwrap();
        let mut objs: Vec<SeriesObject> = (0..16)
            .map(|i| SeriesObject::new(i, Labels::new(), &a).unwrap())
            .collect();
        for round in 0..5i64 {
            for o in objs.iter_mut() {
                o.insert(&a, round * 100, round as f64, 32).unwrap();
            }
        }
        for o in &objs {
            assert_eq!(o.head_samples(&a).unwrap().len(), 5);
        }
    }
}
