//! Self-hosted telemetry: metrics history in an embedded TimeUnion.
//!
//! [`SelfMonitor`] rides the vitals [`tu_obs::Monitor`]'s sampling cadence
//! as one more [`tu_obs::SampleObserver`]: every sample it converts the
//! registry snapshot into timeseries samples — counters as cumulative
//! series, gauges as levels, histograms as `.count`/`.sum` plus one
//! series per non-empty bucket, the cost ledger's closed windows as
//! per-tier dollar series, and the partition heat map as labeled heat
//! cells — and ingests them through the ordinary `put`/`put_batch` path
//! of a *second, embedded* TimeUnion instance rooted at
//! `<primary_dir>/selfmon`, with a small memtable and aggressive
//! retention.
//!
//! **Recursion guard.** The embedded engine is a full engine: its
//! inserts charge storage tiers, traced counters, the heat map, and the
//! flight recorder exactly like the primary's. Every entry into the self
//! engine therefore runs under a [`tu_obs::selfmon`] scope, which the
//! instrumentation choke points check: registry mutations become no-ops,
//! trace/heat/flight charges are suppressed, and [`tu_cloud`] tier
//! counters divert to `obs.selfmon.diverted.*`. The primary's counters,
//! cost ledger, and heat map are byte-identical with self-monitoring on
//! or off (pinned by `tests/selfmon.rs`).
//!
//! **Rules.** A small rule language drives derived series and alerts:
//!
//! ```text
//! # recording rule: periodic aggregate re-ingested as a derived series
//! record ingest_rate = rate(core.ingest.samples) over 60s step 10s
//! # alert rule: threshold over a lookback window
//! alert ingest_stall if rate(core.ingest.samples) over 120s < 1
//! ```
//!
//! Alert firing/resolution is logged to the dedicated `alert` event-log
//! target (its own rate-limit budget), surfaced at `/alerts`, and folded
//! into the engine's [`tu_obs::HealthReport`] as degraded-reasons.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;

use tu_cloud::cost::LatencyMode;
use tu_common::clock::SharedClock;
use tu_common::lockdep::{self, Mutex};
use tu_common::{Error, Labels, Result, SeriesId, Timestamp, Value};
use tu_compress::agg::AggKind;
use tu_index::Selector;
use tu_obs::MetricsSnapshot;

use crate::engine::{Options, TimeUnion};

/// Default retention of the embedded telemetry engine: one hour of
/// metrics history is plenty for live debugging and keeps the self
/// engine's footprint bounded.
const DEFAULT_RETENTION_MS: i64 = 3_600_000;

/// How often the self engine's retention sweep runs.
const RETENTION_EVERY_MS: i64 = 60_000;

/// Rate budget of the dedicated `alert` event-log target: alert
/// transitions are rare and load-bearing, so they get their own window
/// budget instead of competing with chatty operational targets.
const ALERT_EVENTS_PER_WINDOW: u64 = 64;

// --- configuration ---------------------------------------------------------------

/// Self-monitoring configuration ([`Options::selfmon`]).
#[derive(Clone)]
pub struct SelfmonOptions {
    /// Retention of the embedded metrics history.
    pub retention_ms: i64,
    /// Rule text ([`parse_rules`] syntax); empty means no rules.
    pub rules: String,
}

impl Default for SelfmonOptions {
    fn default() -> Self {
        SelfmonOptions {
            retention_ms: DEFAULT_RETENTION_MS,
            rules: String::new(),
        }
    }
}

/// Resolves the effective self-monitoring configuration: `TU_SELFMON=0`
/// forces it off, any other non-empty `TU_SELFMON` value forces it on
/// (with defaults unless [`Options::selfmon`] is also set), otherwise the
/// configured option decides. `TU_SELFMON_RULES` names a rule file that
/// replaces the configured rule text.
pub fn resolve(configured: &Option<SelfmonOptions>) -> Option<SelfmonOptions> {
    let env = std::env::var("TU_SELFMON").ok().filter(|v| !v.is_empty());
    let mut cfg = match env.as_deref() {
        Some("0") => return None,
        Some(_) => configured.clone().unwrap_or_default(),
        None => configured.clone()?,
    };
    if let Ok(path) = std::env::var("TU_SELFMON_RULES") {
        match std::fs::read_to_string(&path) {
            Ok(text) => cfg.rules = text,
            Err(e) => tu_obs::log::warn(
                "core.selfmon",
                "failed to read TU_SELFMON_RULES file",
                &[("path", path.into()), ("error", e.to_string().into())],
            ),
        }
    }
    Some(cfg)
}

// --- rule language ---------------------------------------------------------------

/// Comparison operator of an alert predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Gt,
    Lt,
    Ge,
    Le,
}

impl CmpOp {
    fn parse(s: &str) -> Option<CmpOp> {
        match s {
            ">" => Some(CmpOp::Gt),
            "<" => Some(CmpOp::Lt),
            ">=" => Some(CmpOp::Ge),
            "<=" => Some(CmpOp::Le),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            CmpOp::Gt => ">",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Le => "<=",
        }
    }

    fn eval(&self, value: f64, threshold: f64) -> bool {
        match self {
            CmpOp::Gt => value > threshold,
            CmpOp::Lt => value < threshold,
            CmpOp::Ge => value >= threshold,
            CmpOp::Le => value <= threshold,
        }
    }
}

/// The query half shared by both rule kinds:
/// `<agg>(<metric>{k=v,...}) over <secs>s`.
#[derive(Debug, Clone)]
pub struct RuleQuery {
    pub agg: AggKind,
    pub metric: String,
    pub matchers: Vec<(String, String)>,
    /// Lookback window.
    pub over_ms: i64,
    /// Aggregation step (recording rules; alerts use one `over_ms` window).
    pub step_ms: i64,
}

impl RuleQuery {
    fn selectors(&self) -> Vec<Selector> {
        let mut out = vec![Selector::exact("metric", self.metric.clone())];
        for (k, v) in &self.matchers {
            out.push(Selector::exact(k.clone(), v.clone()));
        }
        out
    }

    /// Canonical text form, e.g. `rate(core.ingest.samples{tier=block}) over 60s`.
    pub fn render(&self) -> String {
        let mut out = format!("{}({}", self.agg.name(), self.metric);
        if !self.matchers.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.matchers.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{k}={v}"));
            }
            out.push('}');
        }
        out.push_str(&format!(") over {}s", self.over_ms / 1_000));
        out
    }
}

/// `record <name> = <query> step <secs>s` — periodically re-ingests the
/// aggregate as a derived series named `<name>`.
#[derive(Debug, Clone)]
pub struct RecordingRule {
    pub name: String,
    pub query: RuleQuery,
}

/// `alert <name> if <query> <op> <value>` — fires while the aggregate of
/// the lookback window violates the threshold.
#[derive(Debug, Clone)]
pub struct AlertRule {
    pub name: String,
    pub query: RuleQuery,
    pub op: CmpOp,
    pub threshold: f64,
}

impl AlertRule {
    /// The full predicate text, e.g.
    /// `rate(core.ingest.samples) over 120s < 1`.
    pub fn predicate(&self) -> String {
        format!(
            "{} {} {}",
            self.query.render(),
            self.op.as_str(),
            fmt_f64(self.threshold)
        )
    }
}

/// A parsed rule file.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    pub records: Vec<RecordingRule>,
    pub alerts: Vec<AlertRule>,
}

/// `"60s"` / `"5m"` → milliseconds.
fn parse_duration_ms(tok: &str) -> Option<i64> {
    let (num, mult) = if let Some(n) = tok.strip_suffix('s') {
        (n, 1_000)
    } else if let Some(n) = tok.strip_suffix('m') {
        (n, 60_000)
    } else {
        return None;
    };
    let n: i64 = num.parse().ok()?;
    (n > 0).then_some(n * mult)
}

/// `"avg(metric{k=v,k2=v2})"` → (agg, metric, matchers). No spaces inside
/// the expression (lines are tokenized on whitespace).
fn parse_source(tok: &str) -> Option<(AggKind, String, Vec<(String, String)>)> {
    let open = tok.find('(')?;
    let agg = AggKind::parse(&tok[..open])?;
    let body = tok[open + 1..].strip_suffix(')')?;
    let (metric, matchers) = match body.find('{') {
        Some(brace) => {
            let inner = body[brace + 1..].strip_suffix('}')?;
            let mut pairs = Vec::new();
            for part in inner.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = part.split_once('=')?;
                pairs.push((k.to_string(), v.to_string()));
            }
            (&body[..brace], pairs)
        }
        None => (body, Vec::new()),
    };
    if metric.is_empty() {
        return None;
    }
    Some((agg, metric.to_string(), matchers))
}

/// Parses rule text: one rule per line, `#` comments and blank lines
/// skipped. Errors carry the offending line number.
pub fn parse_rules(text: &str) -> Result<RuleSet> {
    let mut out = RuleSet::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |what: &str| {
            Error::invalid(format!(
                "selfmon rules line {}: {} in {:?}",
                lineno + 1,
                what,
                line
            ))
        };
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("record") => {
                let name = toks.next().ok_or_else(|| bad("missing rule name"))?;
                if toks.next() != Some("=") {
                    return Err(bad("expected `=`"));
                }
                let (agg, metric, matchers) = toks
                    .next()
                    .and_then(parse_source)
                    .ok_or_else(|| bad("bad aggregate expression"))?;
                if toks.next() != Some("over") {
                    return Err(bad("expected `over`"));
                }
                let over_ms = toks
                    .next()
                    .and_then(parse_duration_ms)
                    .ok_or_else(|| bad("bad lookback duration"))?;
                if toks.next() != Some("step") {
                    return Err(bad("expected `step`"));
                }
                let step_ms = toks
                    .next()
                    .and_then(parse_duration_ms)
                    .ok_or_else(|| bad("bad step duration"))?;
                if toks.next().is_some() {
                    return Err(bad("trailing tokens"));
                }
                out.records.push(RecordingRule {
                    name: name.to_string(),
                    query: RuleQuery {
                        agg,
                        metric,
                        matchers,
                        over_ms,
                        step_ms,
                    },
                });
            }
            Some("alert") => {
                let name = toks.next().ok_or_else(|| bad("missing rule name"))?;
                if toks.next() != Some("if") {
                    return Err(bad("expected `if`"));
                }
                let (agg, metric, matchers) = toks
                    .next()
                    .and_then(parse_source)
                    .ok_or_else(|| bad("bad aggregate expression"))?;
                if toks.next() != Some("over") {
                    return Err(bad("expected `over`"));
                }
                let over_ms = toks
                    .next()
                    .and_then(parse_duration_ms)
                    .ok_or_else(|| bad("bad lookback duration"))?;
                let op = toks
                    .next()
                    .and_then(CmpOp::parse)
                    .ok_or_else(|| bad("bad comparison operator"))?;
                let threshold: f64 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("bad threshold value"))?;
                if toks.next().is_some() {
                    return Err(bad("trailing tokens"));
                }
                out.alerts.push(AlertRule {
                    name: name.to_string(),
                    query: RuleQuery {
                        agg,
                        metric,
                        matchers,
                        over_ms,
                        step_ms: over_ms,
                    },
                    op,
                    threshold,
                });
            }
            _ => return Err(bad("expected `record` or `alert`")),
        }
    }
    Ok(out)
}

// --- alert state -----------------------------------------------------------------

/// One currently-firing alert.
#[derive(Debug, Clone, PartialEq)]
pub struct FiringAlert {
    pub name: String,
    /// The rule's predicate text.
    pub predicate: String,
    /// Most recent observed value.
    pub value: f64,
    /// When the alert transitioned to firing.
    pub since_ms: i64,
}

#[derive(Default)]
struct AlertState {
    firing: BTreeMap<String, FiringAlert>,
}

struct IngestState {
    /// Label-set → series id cache: first sample of a label set goes
    /// through the slow-path `put`, everything after through `put_batch`.
    ids: HashMap<Vec<u8>, SeriesId>,
    /// End of the newest cost-ledger window already ingested.
    ledger_cursor_ms: i64,
    /// Per recording rule: newest derived window start already ingested.
    record_cursors: HashMap<String, i64>,
    last_retention_ms: i64,
}

// --- the monitor -----------------------------------------------------------------

/// The embedded self-monitoring engine (see the module docs).
pub struct SelfMonitor {
    engine: Arc<TimeUnion>,
    ledger: Arc<tu_cloud::ledger::CostLedger>,
    clock: SharedClock,
    rules: RuleSet,
    ingest: Mutex<IngestState>,
    state: Mutex<AlertState>,
    alerts_fired: tu_obs::TracedCounter,
    alerts_resolved: tu_obs::TracedCounter,
}

impl SelfMonitor {
    /// Opens the embedded telemetry engine at `<primary_dir>/selfmon`.
    /// Runs under a selfmon scope so the embedded engine's own recovery
    /// I/O never pollutes the primary's counters. The `ledger` is the
    /// primary's cost ledger; its observer must be registered *before*
    /// this monitor's so each sample's billing window closes first.
    pub fn open(
        primary_dir: &Path,
        clock: SharedClock,
        ledger: Arc<tu_cloud::ledger::CostLedger>,
        cfg: SelfmonOptions,
    ) -> Result<Arc<SelfMonitor>> {
        let rules = parse_rules(&cfg.rules)?;
        let _scope = tu_obs::selfmon::enter();
        let opts = Options {
            chunk_samples: 32,
            page_cache_bytes: 4 << 20,
            arena_chunks_per_file: 1 << 10,
            retention_ms: Some(cfg.retention_ms.max(RETENTION_EVERY_MS)),
            wal_batch_records: 64,
            wal_purge_bytes: 4 << 20,
            latency: LatencyMode::Off,
            inline_maintenance: true,
            clock: clock.clone(),
            query_threads: 1,
            ingest_threads: 1,
            ..Options::default()
        };
        let engine = Arc::new(TimeUnion::open(primary_dir.join("selfmon"), opts)?);
        // The env knobs (`TU_*_THREADS`) win inside `open`; pin the self
        // engine back to single-threaded — telemetry volume never needs
        // fan-out, and narrow pools keep its footprint predictable.
        engine.set_query_threads(1);
        engine.set_ingest_threads(1);
        tu_obs::log::log().set_target_rate_limit("alert", Some(ALERT_EVENTS_PER_WINDOW));
        Ok(Arc::new(SelfMonitor {
            engine,
            ledger,
            clock,
            rules,
            ingest: Mutex::new(
                &lockdep::CORE_SELFMON_INGEST,
                IngestState {
                    ids: HashMap::new(),
                    ledger_cursor_ms: i64::MIN,
                    record_cursors: HashMap::new(),
                    last_retention_ms: i64::MIN,
                },
            ),
            state: Mutex::new(&lockdep::CORE_SELFMON_STATE, AlertState::default()),
            alerts_fired: tu_obs::traced("core.selfmon.alerts.fired"),
            alerts_resolved: tu_obs::traced("core.selfmon.alerts.resolved"),
        }))
    }

    /// The embedded engine (tests and endpoints).
    pub fn engine(&self) -> &Arc<TimeUnion> {
        &self.engine
    }

    /// The parsed rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// A [`tu_obs::SampleObserver`] feeding this monitor from the vitals
    /// sampler's cadence.
    pub fn observer(self: &Arc<Self>) -> tu_obs::SampleObserver {
        let sm = Arc::clone(self);
        Arc::new(move |at_ms, snap| sm.record(at_ms, snap))
    }

    /// One self-monitoring tick: ingests the snapshot as samples, then
    /// evaluates rules. Tests drive this directly with synthetic clocks.
    pub fn record(&self, at_ms: i64, snap: &MetricsSnapshot) {
        if tu_obs::selfmon::active() {
            return; // re-entrancy backstop: never observe ourselves
        }
        if let Err(e) = self.record_inner(at_ms, snap) {
            tu_obs::log::warn(
                "core.selfmon",
                "self-monitor sample failed",
                &[("error", e.to_string().into())],
            );
        }
        self.evaluate_rules(at_ms);
    }

    fn record_inner(&self, at_ms: i64, snap: &MetricsSnapshot) -> Result<()> {
        let mut st = self.ingest.lock();
        let _scope = tu_obs::selfmon::enter();
        let mut rows: Vec<(Labels, Timestamp, Value)> = Vec::new();
        // Counters are cumulative series (rate() recovers per-second
        // flows); gauges are levels.
        for (name, &v) in &snap.counters {
            rows.push((metric_labels(name), at_ms, v as f64));
        }
        for (name, &v) in &snap.gauges {
            rows.push((metric_labels(name), at_ms, v as f64));
        }
        // Histograms: cumulative count/sum plus one series per non-empty
        // bucket, labeled with the bucket's inclusive upper bound.
        for (name, h) in &snap.histograms {
            rows.push((
                metric_labels(&format!("{name}.count")),
                at_ms,
                h.count as f64,
            ));
            rows.push((metric_labels(&format!("{name}.sum")), at_ms, h.sum as f64));
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let le = if i + 1 == tu_obs::BUCKETS {
                    "+Inf".to_string()
                } else {
                    tu_obs::bucket_upper_bound(i).to_string()
                };
                rows.push((
                    Labels::from_pairs([("metric", format!("{name}.bucket")), ("le", le)]),
                    at_ms,
                    c as f64,
                ));
            }
        }
        // Cost-ledger windows closed since the last tick, as per-tier
        // dollar series stamped at window end. The ledger's observer runs
        // before ours on the same sample, so the window ending at `at_ms`
        // is already visible here.
        for w in self.ledger.windows() {
            if w.end_ms <= st.ledger_cursor_ms {
                continue;
            }
            for t in &w.tiers {
                let tier_labels =
                    |metric: &str| Labels::from_pairs([("metric", metric), ("tier", t.tier)]);
                rows.push((
                    tier_labels("cost.window.request_usd"),
                    w.end_ms,
                    t.request_usd,
                ));
                rows.push((
                    tier_labels("cost.window.storage_usd"),
                    w.end_ms,
                    t.storage_usd,
                ));
                rows.push((
                    tier_labels("cost.window.total_usd"),
                    w.end_ms,
                    t.total_usd(),
                ));
            }
            st.ledger_cursor_ms = w.end_ms;
        }
        // Partition heat cells: cumulative request/byte totals per
        // (partition, tier), labeled by the partition's time range.
        let heat = tu_obs::heat::snapshot();
        for p in &heat.partitions {
            let part = format!("{}-{}", p.key.start_ms, p.key.end_ms);
            for (ti, tier) in tu_obs::heat::HEAT_TIERS.iter().enumerate() {
                let th = &p.tiers[ti];
                let bytes = th.bytes_read + th.bytes_written;
                if th.requests() == 0 && bytes == 0 {
                    continue;
                }
                let cell = |metric: &str| {
                    Labels::from_pairs([
                        ("metric", metric),
                        ("partition", part.as_str()),
                        ("tier", tier),
                    ])
                };
                rows.push((cell("heat.requests"), at_ms, th.requests() as f64));
                rows.push((cell("heat.bytes"), at_ms, bytes as f64));
            }
        }
        let n = self.ingest_rows(&mut st, rows)?;
        if st.last_retention_ms == i64::MIN || at_ms - st.last_retention_ms >= RETENTION_EVERY_MS {
            st.last_retention_ms = at_ms;
            self.engine.apply_retention()?;
        }
        drop(st);
        drop(_scope);
        tu_obs::selfmon::note_sample(n);
        Ok(())
    }

    /// Resolves series ids and ingests: the first sample of a label set
    /// takes the slow path (creating the series), everything else rides
    /// one `put_batch`. Caller holds the ingest lock and a selfmon scope.
    fn ingest_rows(
        &self,
        st: &mut IngestState,
        rows: Vec<(Labels, Timestamp, Value)>,
    ) -> Result<u64> {
        let mut batch: Vec<(SeriesId, Timestamp, Value)> = Vec::with_capacity(rows.len());
        let mut n = 0u64;
        for (labels, t, v) in rows {
            if !v.is_finite() {
                continue;
            }
            n += 1;
            let key = labels.to_bytes();
            match st.ids.get(&key) {
                Some(&id) => batch.push((id, t, v)),
                None => {
                    let id = self.engine.put(&labels, t, v)?;
                    st.ids.insert(key, id);
                }
            }
        }
        self.engine.put_batch(&batch)?;
        Ok(n)
    }

    /// Evaluates recording and alert rules at `at_ms`. Queries run with
    /// no monitor lock held; the alert-state lock is only taken for the
    /// transition diff.
    fn evaluate_rules(&self, at_ms: i64) {
        if self.rules.records.is_empty() && self.rules.alerts.is_empty() {
            return;
        }
        // Recording rules: re-ingest completed aggregate windows as
        // derived series. Derived labels are the source series' labels
        // with `metric` rewritten to the rule name, so a rule over a
        // labeled family (e.g. heat cells) yields one derived series per
        // source series.
        for r in &self.rules.records {
            let derived = {
                let _scope = tu_obs::selfmon::enter();
                self.engine.query_aggregate(
                    &r.query.selectors(),
                    r.query.agg,
                    at_ms - r.query.over_ms,
                    at_ms,
                    r.query.step_ms,
                )
            };
            let result = match derived {
                Ok(result) => result,
                Err(e) => {
                    tu_obs::log::warn(
                        "core.selfmon",
                        "recording rule query failed",
                        &[
                            ("rule", r.name.clone().into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                    continue;
                }
            };
            let mut rows: Vec<(Labels, Timestamp, Value)> = Vec::new();
            let mut max_start = i64::MIN;
            {
                let st = self.ingest.lock();
                let cursor = st.record_cursors.get(&r.name).copied().unwrap_or(i64::MIN);
                for series in &result {
                    let mut labels = series.labels.clone();
                    labels.set("metric", r.name.clone());
                    for s in &series.samples {
                        // Only completed, not-yet-recorded windows.
                        if s.t > cursor && s.t + r.query.step_ms <= at_ms {
                            rows.push((labels.clone(), s.t, s.v));
                            max_start = max_start.max(s.t);
                        }
                    }
                }
            }
            if rows.is_empty() {
                continue;
            }
            let mut st = self.ingest.lock();
            let _scope = tu_obs::selfmon::enter();
            if let Err(e) = self.ingest_rows(&mut st, rows) {
                tu_obs::log::warn(
                    "core.selfmon",
                    "recording rule ingest failed",
                    &[
                        ("rule", r.name.clone().into()),
                        ("error", e.to_string().into()),
                    ],
                );
                continue;
            }
            st.record_cursors.insert(r.name.clone(), max_start);
        }
        // Alert rules: one aggregate over the whole lookback window; a
        // rule over a labeled family fires on its most extreme series.
        let mut observed: Vec<(usize, Option<f64>)> = Vec::with_capacity(self.rules.alerts.len());
        for (i, a) in self.rules.alerts.iter().enumerate() {
            let result = {
                let _scope = tu_obs::selfmon::enter();
                self.engine.query_aggregate(
                    &a.query.selectors(),
                    a.query.agg,
                    at_ms - a.query.over_ms,
                    at_ms,
                    a.query.over_ms,
                )
            };
            let value =
                match result {
                    Ok(rows) => {
                        let values = rows
                            .iter()
                            .flat_map(|s| s.samples.iter().map(|s| s.v))
                            .filter(|v| v.is_finite());
                        match a.op {
                            // The series closest to violating decides.
                            CmpOp::Gt | CmpOp::Ge => values
                                .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.max(v)))),
                            CmpOp::Lt | CmpOp::Le => values
                                .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.min(v)))),
                        }
                    }
                    Err(e) => {
                        tu_obs::log::warn(
                            "core.selfmon",
                            "alert rule query failed",
                            &[
                                ("rule", a.name.clone().into()),
                                ("error", e.to_string().into()),
                            ],
                        );
                        None
                    }
                };
            observed.push((i, value));
        }
        // Transition diff under the state lock; events logged after.
        enum Transition {
            Fired(FiringAlert),
            Resolved(FiringAlert),
        }
        let mut transitions: Vec<Transition> = Vec::new();
        {
            let mut state = self.state.lock();
            for (i, value) in observed {
                let rule = &self.rules.alerts[i];
                let violates = value.map(|v| rule.op.eval(v, rule.threshold));
                match (violates, state.firing.contains_key(&rule.name)) {
                    (Some(true), false) => {
                        let alert = FiringAlert {
                            name: rule.name.clone(),
                            predicate: rule.predicate(),
                            value: value.unwrap_or(f64::NAN),
                            since_ms: at_ms,
                        };
                        state.firing.insert(rule.name.clone(), alert.clone());
                        transitions.push(Transition::Fired(alert));
                    }
                    (Some(true), true) => {
                        if let Some(f) = state.firing.get_mut(&rule.name) {
                            f.value = value.unwrap_or(f.value);
                        }
                    }
                    // No data (None) keeps the current state: a window
                    // with nothing in it is not evidence of recovery.
                    (Some(false), true) => {
                        if let Some(alert) = state.firing.remove(&rule.name) {
                            transitions.push(Transition::Resolved(alert));
                        }
                    }
                    _ => {}
                }
            }
        }
        for t in &transitions {
            match t {
                Transition::Fired(a) => {
                    self.alerts_fired.inc();
                    tu_obs::log::warn(
                        "alert",
                        "alert firing",
                        &[
                            ("name", a.name.clone().into()),
                            ("predicate", a.predicate.clone().into()),
                            ("value", fmt_f64(a.value).into()),
                        ],
                    );
                }
                Transition::Resolved(a) => {
                    self.alerts_resolved.inc();
                    tu_obs::log::info(
                        "alert",
                        "alert resolved",
                        &[
                            ("name", a.name.clone().into()),
                            ("predicate", a.predicate.clone().into()),
                        ],
                    );
                }
            }
        }
    }

    /// Currently-firing alerts, sorted by name.
    pub fn firing_alerts(&self) -> Vec<FiringAlert> {
        self.state.lock().firing.values().cloned().collect()
    }

    // --- JSON endpoints ----------------------------------------------------------

    /// `/query_range?metric=&labels=k:v,k2:v2&start=&end=&step=&agg=` —
    /// windowed aggregates over the embedded metrics history. Times and
    /// `step` are milliseconds (engine-native); `start` defaults to
    /// `end - 1h`, `end` to now, `step` to 60s, `agg` to `avg`.
    pub fn query_range_json(&self, query: &str) -> String {
        match self.query_range(query) {
            Ok(body) => body,
            Err(e) => format!("{{\"error\":{}}}", json_str(&e.to_string())),
        }
    }

    fn query_range(&self, query: &str) -> Result<String> {
        let metric =
            param(query, "metric").ok_or_else(|| Error::invalid("missing metric= parameter"))?;
        let agg = match param(query, "agg") {
            Some(s) => {
                AggKind::parse(s).ok_or_else(|| Error::invalid(format!("unknown agg {s:?}")))?
            }
            None => AggKind::Avg,
        };
        let parse_ms = |key: &str| -> Result<Option<i64>> {
            match param(query, key) {
                None | Some("") => Ok(None),
                Some(v) => v
                    .parse::<i64>()
                    .map(Some)
                    .map_err(|_| Error::invalid(format!("bad {key}= parameter"))),
            }
        };
        let end = parse_ms("end")?.unwrap_or_else(|| self.clock.now_ms());
        let start = parse_ms("start")?.unwrap_or(end - DEFAULT_RETENTION_MS);
        let step = parse_ms("step")?.unwrap_or(60_000);
        if step <= 0 {
            return Err(Error::invalid("step must be positive"));
        }
        let mut selectors = vec![Selector::exact("metric", metric)];
        if let Some(ls) = param(query, "labels") {
            for part in ls.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = part
                    .split_once(':')
                    .ok_or_else(|| Error::invalid("labels= expects k:v,k2:v2"))?;
                selectors.push(Selector::exact(k, v));
            }
        }
        let result = {
            let _scope = tu_obs::selfmon::enter();
            self.engine
                .query_aggregate(&selectors, agg, start, end, step)?
        };
        let mut out = format!(
            "{{\"metric\":{},\"agg\":\"{}\",\"start\":{start},\"end\":{end},\"step\":{step},\"series\":[",
            json_str(metric),
            agg.name()
        );
        for (i, s) in result.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"labels\":");
            out.push_str(&labels_json(&s.labels));
            out.push_str(",\"samples\":[");
            for (j, sample) in s.samples.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{}]", sample.t, fmt_f64(sample.v)));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        Ok(out)
    }

    /// `/series` — every label set in the embedded metrics history.
    pub fn series_json(&self) -> String {
        let series = {
            let _scope = tu_obs::selfmon::enter();
            self.engine.series_labels()
        };
        let mut out = String::from("{\"series\":[");
        for (i, labels) in series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&labels_json(labels));
        }
        out.push_str("]}");
        out
    }

    /// `/labels` — label keys and their values across the embedded
    /// metrics history.
    pub fn labels_json(&self) -> String {
        let series = {
            let _scope = tu_obs::selfmon::enter();
            self.engine.series_labels()
        };
        let mut by_key: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for labels in &series {
            for (k, v) in labels.iter() {
                let vals = by_key.entry(k).or_default();
                if !vals.contains(&v) {
                    vals.push(v);
                }
            }
        }
        let mut out = String::from("{\"labels\":{");
        for (i, (k, mut vals)) in by_key.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            vals.sort_unstable();
            out.push_str(&json_str(k));
            out.push_str(":[");
            for (j, v) in vals.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(v));
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }

    /// `/alerts` — every alert rule with its state, plus the firing set.
    pub fn alerts_json(&self) -> String {
        let firing = self.firing_alerts();
        let mut out = String::from("{\"rules\":[");
        for (i, a) in self.rules.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let state = if firing.iter().any(|f| f.name == a.name) {
                "firing"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "{{\"name\":{},\"predicate\":{},\"state\":\"{state}\"}}",
                json_str(&a.name),
                json_str(&a.predicate())
            ));
        }
        out.push_str("],\"firing\":[");
        for (i, f) in firing.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"predicate\":{},\"value\":{},\"since_ms\":{}}}",
                json_str(&f.name),
                json_str(&f.predicate),
                fmt_f64(f.value),
                f.since_ms
            ));
        }
        out.push_str("]}");
        out
    }
}

/// `{metric: name}` — the label set of an unlabeled registry metric.
fn metric_labels(name: &str) -> Labels {
    Labels::from_pairs([("metric", name)])
}

/// The value of `key` in a `k=v&k2=v2` query string, undecoded.
fn param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == key).then_some(v)
    })
}

/// JSON-safe float: finite values render bare, NaN/infinity as `null`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A JSON string literal with the required escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A label set as a JSON object.
fn labels_json(labels: &Labels) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(k));
        out.push(':');
        out.push_str(&json_str(v));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_parsing_round_trips() {
        let text = "\n\
            # derived ingest rate\n\
            record ingest_rate = rate(core.ingest.samples) over 60s step 10s\n\
            alert hot_partition if sum(heat.requests{tier=object}) over 5m > 100\n\
            alert ingest_stall if rate(core.ingest.samples) over 120s < 1\n";
        let rules = parse_rules(text).unwrap();
        assert_eq!(rules.records.len(), 1);
        assert_eq!(rules.alerts.len(), 2);
        let r = &rules.records[0];
        assert_eq!(r.name, "ingest_rate");
        assert_eq!(r.query.agg, AggKind::Rate);
        assert_eq!(r.query.over_ms, 60_000);
        assert_eq!(r.query.step_ms, 10_000);
        assert_eq!(r.query.render(), "rate(core.ingest.samples) over 60s");
        let a = &rules.alerts[0];
        assert_eq!(a.name, "hot_partition");
        assert_eq!(
            a.query.matchers,
            vec![("tier".to_string(), "object".to_string())]
        );
        assert_eq!(a.query.over_ms, 300_000);
        assert_eq!(a.op, CmpOp::Gt);
        assert_eq!(a.threshold, 100.0);
        assert_eq!(
            a.predicate(),
            "sum(heat.requests{tier=object}) over 300s > 100"
        );
        assert_eq!(rules.alerts[1].op, CmpOp::Lt);
    }

    #[test]
    fn rule_parse_errors_carry_line_numbers() {
        for bad in [
            "record x = avg(m) over 60s",         // missing step
            "alert x if avg(m) over 60s",         // missing op/value
            "alert x if avg() over 60s > 1",      // empty metric
            "alert x if avg(m) over 60 > 1",      // unitless duration
            "widget x = avg(m) over 60s step 5s", // unknown keyword
            "alert x if avg(m) over 60s >> 1",    // bad operator
        ] {
            let err = parse_rules(bad).unwrap_err().to_string();
            assert!(err.contains("line 1"), "{bad}: {err}");
        }
        assert!(parse_rules("# only comments\n\n")
            .unwrap()
            .alerts
            .is_empty());
    }

    #[test]
    fn cmp_ops_evaluate() {
        assert!(CmpOp::Gt.eval(2.0, 1.0));
        assert!(!CmpOp::Gt.eval(1.0, 1.0));
        assert!(CmpOp::Ge.eval(1.0, 1.0));
        assert!(CmpOp::Lt.eval(0.5, 1.0));
        assert!(CmpOp::Le.eval(1.0, 1.0));
    }

    #[test]
    fn json_helpers_escape_and_bound() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        let l = Labels::from_pairs([("metric", "m"), ("tier", "block")]);
        assert_eq!(labels_json(&l), "{\"metric\":\"m\",\"tier\":\"block\"}");
        assert_eq!(param("metric=x&start=5", "start"), Some("5"));
        assert_eq!(param("metric=x", "end"), None);
    }
}
