//! The series/group catalog: the durable registry of identifiers.
//!
//! Tag sets must survive restarts so the inverted index and the memory
//! objects can be rebuilt. The catalog is an append-only, CRC-framed file
//! on the fast tier with three record kinds:
//!
//! * `Series(id, labels)` — an individual timeseries was created.
//! * `Group(gid, group_tags)` — a group was created.
//! * `Member(gid, slot, unique_tags)` — a member joined a group at `slot`
//!   (slots are append-only positions, §3.4).

use std::sync::Arc;

use tu_common::lockdep::{self, Mutex};

use tu_cloud::block::BlockStore;
use tu_common::{varint, Error, GroupId, Labels, Result, SeriesId, SeriesRef};
use tu_compress::crc;

/// One catalog record.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogRecord {
    Series {
        id: SeriesId,
        labels: Labels,
    },
    Group {
        gid: GroupId,
        group_tags: Labels,
    },
    Member {
        gid: GroupId,
        slot: SeriesRef,
        unique_tags: Labels,
    },
}

fn write_labels(out: &mut Vec<u8>, labels: &Labels) {
    varint::write_u64(out, labels.len() as u64);
    for (k, v) in labels.iter() {
        varint::write_u64(out, k.len() as u64);
        out.extend_from_slice(k.as_bytes());
        varint::write_u64(out, v.len() as u64);
        out.extend_from_slice(v.as_bytes());
    }
}

fn read_labels(buf: &[u8]) -> Result<(Labels, usize)> {
    let mut off = 0usize;
    let (n, used) = varint::read_u64(&buf[off..])?;
    off += used;
    let mut pairs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let (klen, used) = varint::read_u64(&buf[off..])?;
        off += used;
        let k = std::str::from_utf8(
            buf.get(off..off + klen as usize)
                .ok_or_else(|| Error::corruption("catalog label key truncated"))?,
        )
        .map_err(|_| Error::corruption("catalog label key not utf-8"))?
        .to_string();
        off += klen as usize;
        let (vlen, used) = varint::read_u64(&buf[off..])?;
        off += used;
        let v = std::str::from_utf8(
            buf.get(off..off + vlen as usize)
                .ok_or_else(|| Error::corruption("catalog label value truncated"))?,
        )
        .map_err(|_| Error::corruption("catalog label value not utf-8"))?
        .to_string();
        off += vlen as usize;
        pairs.push((k, v));
    }
    Ok((Labels::from_pairs(pairs), off))
}

impl CatalogRecord {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            CatalogRecord::Series { id, labels } => {
                body.push(1);
                body.extend_from_slice(&id.to_le_bytes());
                write_labels(&mut body, labels);
            }
            CatalogRecord::Group { gid, group_tags } => {
                body.push(2);
                body.extend_from_slice(&gid.to_le_bytes());
                write_labels(&mut body, group_tags);
            }
            CatalogRecord::Member {
                gid,
                slot,
                unique_tags,
            } => {
                body.push(3);
                body.extend_from_slice(&gid.to_le_bytes());
                body.extend_from_slice(&slot.to_le_bytes());
                write_labels(&mut body, unique_tags);
            }
        }
        let mut out = Vec::with_capacity(8 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc::mask(crc::crc32c(&body)).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn decode(body: &[u8]) -> Result<Self> {
        let tag = *body
            .first()
            .ok_or_else(|| Error::corruption("empty catalog record"))?;
        match tag {
            1 => {
                let id = tu_common::bytes::u64_le(
                    body.get(1..9)
                        .ok_or_else(|| Error::corruption("catalog series id truncated"))?,
                );
                let (labels, _) = read_labels(&body[9..])?;
                Ok(CatalogRecord::Series { id, labels })
            }
            2 => {
                let gid = tu_common::bytes::u64_le(
                    body.get(1..9)
                        .ok_or_else(|| Error::corruption("catalog group id truncated"))?,
                );
                let (group_tags, _) = read_labels(&body[9..])?;
                Ok(CatalogRecord::Group { gid, group_tags })
            }
            3 => {
                let gid = tu_common::bytes::u64_le(
                    body.get(1..9)
                        .ok_or_else(|| Error::corruption("catalog member gid truncated"))?,
                );
                let slot = tu_common::bytes::u32_le(
                    body.get(9..13)
                        .ok_or_else(|| Error::corruption("catalog member slot truncated"))?,
                );
                let (unique_tags, _) = read_labels(&body[13..])?;
                Ok(CatalogRecord::Member {
                    gid,
                    slot,
                    unique_tags,
                })
            }
            other => Err(Error::corruption(format!(
                "unknown catalog record tag {other}"
            ))),
        }
    }
}

/// The append-only catalog file.
pub struct Catalog {
    store: Arc<BlockStore>,
    name: String,
    pending: Mutex<Vec<u8>>,
}

impl Catalog {
    pub fn open(store: Arc<BlockStore>, name: impl Into<String>) -> Self {
        Catalog {
            store,
            name: name.into(),
            pending: Mutex::new(&lockdep::CORE_CATALOG_PENDING, Vec::new()),
        }
    }

    /// Queues a record; [`Catalog::flush`] persists the batch.
    pub fn append(&self, record: &CatalogRecord) {
        self.pending.lock().extend_from_slice(&record.encode());
    }

    pub fn flush(&self) -> Result<()> {
        let mut pending = self.pending.lock();
        if pending.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut *pending);
        self.store.append(&self.name, &batch)?;
        Ok(())
    }

    /// Replays all intact records; a torn tail ends replay silently.
    pub fn replay(&self) -> Result<Vec<CatalogRecord>> {
        let bytes = match self.store.read_file(&self.name) {
            Ok(b) => b,
            Err(e) if e.is_not_found() => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        let mut off = 0usize;
        while off + 8 <= bytes.len() {
            let len = tu_common::bytes::u32_le(&bytes[off..off + 4]) as usize;
            let stored = crc::unmask(tu_common::bytes::u32_le(&bytes[off + 4..off + 8]));
            let start = off + 8;
            if start + len > bytes.len() {
                break;
            }
            let body = &bytes[start..start + len];
            if crc::crc32c(body) != stored {
                if start + len == bytes.len() {
                    break;
                }
                return Err(Error::corruption("catalog record checksum mismatch"));
            }
            out.push(CatalogRecord::decode(body)?);
            off = start + len;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_cloud::cost::{CostClock, LatencyMode, LatencyModel};

    fn catalog() -> (tempfile::TempDir, Catalog) {
        let dir = tempfile::tempdir().unwrap();
        let store = Arc::new(
            BlockStore::open(
                dir.path().join("b"),
                LatencyModel::ebs(),
                CostClock::new(LatencyMode::Off),
            )
            .unwrap(),
        );
        (dir, Catalog::open(store, "catalog"))
    }

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn all_record_kinds_round_trip() {
        let (_d, c) = catalog();
        let records = vec![
            CatalogRecord::Series {
                id: 7,
                labels: labels(&[("metric", "cpu"), ("host", "h1")]),
            },
            CatalogRecord::Group {
                gid: 1 | tu_common::GROUP_ID_FLAG,
                group_tags: labels(&[("host", "h1")]),
            },
            CatalogRecord::Member {
                gid: 1 | tu_common::GROUP_ID_FLAG,
                slot: 0,
                unique_tags: labels(&[("metric", "mem")]),
            },
            CatalogRecord::Series {
                id: 8,
                labels: Labels::new(),
            },
        ];
        for r in &records {
            c.append(r);
        }
        c.flush().unwrap();
        assert_eq!(c.replay().unwrap(), records);
    }

    #[test]
    fn empty_catalog_replays_empty() {
        let (_d, c) = catalog();
        assert!(c.replay().unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let (_d, c) = catalog();
        c.append(&CatalogRecord::Series {
            id: 1,
            labels: labels(&[("a", "b")]),
        });
        c.flush().unwrap();
        let tail = CatalogRecord::Series {
            id: 2,
            labels: labels(&[("c", "d")]),
        }
        .encode();
        c.store.append("catalog", &tail[..tail.len() - 3]).unwrap();
        let got = c.replay().unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn unicode_labels_survive() {
        let (_d, c) = catalog();
        let rec = CatalogRecord::Series {
            id: 1,
            labels: labels(&[("城市", "東京"), ("emoji", "📈")]),
        };
        c.append(&rec);
        c.flush().unwrap();
        assert_eq!(c.replay().unwrap(), vec![rec]);
    }
}
