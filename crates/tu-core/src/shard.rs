//! A sharded concurrent map for the engine's hot series/group lookups.
//!
//! The ingest fast path does one map lookup per sample; with a single
//! `RwLock<HashMap>`, concurrent writers on *distinct* series still
//! serialize on that lock's cache line. Sharding by key hash gives each
//! writer its own lock with high probability, so contention only occurs
//! when two writers actually touch the same shard.
//!
//! This is the pragmatic fixed-shard variant of the concurrent-hot-map
//! idiom: readers and writers lock one shard, never the whole map, and
//! whole-map operations (snapshots, counts) visit shards one at a time —
//! acceptable because every whole-map caller (recovery, retention,
//! `flush_all`, stats) is off the hot path.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};

use tu_common::lockdep::{self, LockClass, RwLock, RwLockWriteGuard};

/// Shard count. A power of two well above the thread counts we fan out
/// to (8), so the probability of two concurrent writers colliding on a
/// shard stays low without bloating the struct.
pub const SHARDS: usize = 64;

/// A hash map split into [`SHARDS`] independently locked shards.
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    hasher: RandomState,
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    /// `class` is the lock-witness class charged for every shard lock;
    /// the engine distinguishes its label-index maps from its object maps
    /// so the runtime witness can order them (`docs/LOCK_ORDER.md`).
    pub fn new(class: &'static LockClass) -> Self {
        ShardedMap {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(class, HashMap::new()))
                .collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard_of(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) as usize) & (SHARDS - 1)
    }

    /// Clones the value under `key`, locking only its shard for reading.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shards[self.shard_of(key)].read().get(key).cloned()
    }

    pub fn contains_key(&self, key: &K) -> bool {
        self.shards[self.shard_of(key)].read().contains_key(key)
    }

    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shards[self.shard_of(&key)].write().insert(key, value)
    }

    pub fn remove(&self, key: &K) -> Option<V> {
        self.shards[self.shard_of(key)].write().remove(key)
    }

    /// Write-locks the shard that owns `key`, for check-then-insert
    /// sequences that must serialize concurrent creators of the same key
    /// (but not creators of keys in other shards).
    pub fn lock_shard(&self, key: &K) -> RwLockWriteGuard<'_, HashMap<K, V>> {
        self.shards[self.shard_of(key)].write()
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Snapshot of all values. Shards are visited one at a time, so the
    /// snapshot is not atomic across shards — fine for the maintenance
    /// and stats paths that use it.
    pub fn values(&self) -> Vec<V> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().values().cloned());
        }
        out
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedMap<K, V> {
    /// Snapshot of all entries (same caveat as [`ShardedMap::values`]).
    pub fn entries(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new(&lockdep::CORE_MAP_SHARD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let m: ShardedMap<u64, String> = ShardedMap::default();
        assert!(m.is_empty());
        for i in 0..500u64 {
            assert!(m.insert(i, format!("v{i}")).is_none());
        }
        assert_eq!(m.len(), 500);
        assert_eq!(m.get(&123), Some("v123".to_string()));
        assert!(m.contains_key(&499));
        assert_eq!(m.remove(&123), Some("v123".to_string()));
        assert_eq!(m.get(&123), None);
        assert_eq!(m.len(), 499);
    }

    #[test]
    fn snapshots_cover_every_shard() {
        let m: ShardedMap<u64, u64> = ShardedMap::default();
        for i in 0..200u64 {
            m.insert(i, i * 2);
        }
        let mut values = m.values();
        values.sort_unstable();
        assert_eq!(values, (0..200u64).map(|i| i * 2).collect::<Vec<_>>());
        let mut entries = m.entries();
        entries.sort_unstable();
        assert!(entries.iter().all(|&(k, v)| v == k * 2));
        assert_eq!(entries.len(), 200);
    }

    #[test]
    fn lock_shard_serializes_same_key_creators() {
        let m: ShardedMap<u64, u64> = ShardedMap::default();
        {
            let mut guard = m.lock_shard(&7);
            if !guard.contains_key(&7) {
                guard.insert(7, 70);
            }
        }
        assert_eq!(m.get(&7), Some(70));
    }

    #[test]
    fn concurrent_writers_on_distinct_keys() {
        let m: ShardedMap<u64, u64> = ShardedMap::default();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..250u64 {
                        m.insert(t * 1000 + i, i);
                    }
                });
            }
        });
        assert_eq!(m.len(), 2000);
    }
}
