//! Query results and sample merging.
//!
//! A Get returns a *timeseries set*; each member exposes its tag set and
//! its samples merged across MemTables, SSTables, and the in-memory head
//! chunk (§3.4). Chunk-level versions are resolved by the tree
//! (newest-wins per chunk key); sample-level overlaps — produced by
//! out-of-order backfills — are resolved here with later-starting chunks
//! overriding earlier ones at equal timestamps, matching "keep the data
//! sample from the newest SSTable".

use std::collections::BTreeMap;

use tu_common::{Labels, Sample, SeriesId, Timestamp, Value};

/// One matched timeseries with its samples in `[start, end)`, sorted by
/// timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesResult {
    pub id: SeriesId,
    pub labels: Labels,
    pub samples: Vec<Sample>,
}

/// The result of a Get: every matched series, sorted by label bytes.
pub type QueryResult = Vec<SeriesResult>;

/// Accumulates samples from multiple overlapping sources. Sources must be
/// offered in oldest-to-newest order; later offers override earlier ones
/// at equal timestamps.
#[derive(Debug, Default)]
pub struct SampleMerger {
    map: BTreeMap<Timestamp, Value>,
    start: Timestamp,
    end: Timestamp,
}

impl SampleMerger {
    /// Creates a merger clipping to `[start, end)`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        SampleMerger {
            map: BTreeMap::new(),
            start,
            end,
        }
    }

    /// Offers one sample.
    pub fn offer(&mut self, t: Timestamp, v: Value) {
        if t >= self.start && t < self.end {
            self.map.insert(t, v);
        }
    }

    /// Offers a batch of samples.
    pub fn offer_all(&mut self, samples: impl IntoIterator<Item = Sample>) {
        for s in samples {
            self.offer(s.t, s.v);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Finishes into sorted samples.
    pub fn finish(self) -> Vec<Sample> {
        self.map
            .into_iter()
            .map(|(t, v)| Sample::new(t, v))
            .collect()
    }
}

/// Step-aggregation used by the TSBS query patterns: MAX per aligned
/// window of `step_ms` over `[start, end)`. Windows without samples are
/// omitted.
pub fn aggregate_max(
    samples: &[Sample],
    start: Timestamp,
    end: Timestamp,
    step_ms: i64,
) -> Vec<Sample> {
    assert!(step_ms > 0);
    let mut out: Vec<Sample> = Vec::new();
    for s in samples {
        if s.t < start || s.t >= end {
            continue;
        }
        let bucket = start + ((s.t - start) / step_ms) * step_ms;
        match out.last_mut() {
            Some(last) if last.t == bucket => last.v = last.v.max(s.v),
            _ => out.push(Sample::new(bucket, s.v)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merger_clips_and_dedups_latest_wins() {
        let mut m = SampleMerger::new(10, 30);
        m.offer_all([
            Sample::new(5, 0.0),
            Sample::new(10, 1.0),
            Sample::new(20, 2.0),
        ]);
        m.offer(20, 9.0); // newer source overrides
        m.offer(30, 3.0); // end-exclusive
        assert_eq!(m.finish(), vec![Sample::new(10, 1.0), Sample::new(20, 9.0)]);
    }

    #[test]
    fn merger_sorts_out_of_order_offers() {
        let mut m = SampleMerger::new(0, 100);
        m.offer(50, 5.0);
        m.offer(10, 1.0);
        m.offer(30, 3.0);
        let out = m.finish();
        let ts: Vec<i64> = out.iter().map(|s| s.t).collect();
        assert_eq!(ts, vec![10, 30, 50]);
    }

    #[test]
    fn aggregate_max_buckets_correctly() {
        let samples: Vec<Sample> = (0..10)
            .map(|i| Sample::new(i * 60_000, (i % 4) as f64))
            .collect();
        let out = aggregate_max(&samples, 0, 600_000, 300_000);
        // Bucket 0 covers minutes 0-4 (values 0,1,2,3,0), bucket 1 covers
        // minutes 5-9 (values 1,2,3,0,1).
        assert_eq!(out, vec![Sample::new(0, 3.0), Sample::new(300_000, 3.0)]);
    }

    #[test]
    fn aggregate_max_omits_empty_windows() {
        let samples = vec![Sample::new(0, 1.0), Sample::new(900_000, 2.0)];
        let out = aggregate_max(&samples, 0, 1_200_000, 300_000);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].t, 900_000);
    }
}
