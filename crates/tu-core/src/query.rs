//! Query results and sample merging.
//!
//! A Get returns a *timeseries set*; each member exposes its tag set and
//! its samples merged across MemTables, SSTables, and the in-memory head
//! chunk (§3.4). Chunk-level versions are resolved by the tree
//! (newest-wins per chunk key); sample-level overlaps — produced by
//! out-of-order backfills — are resolved here with later-starting chunks
//! overriding earlier ones at equal timestamps, matching "keep the data
//! sample from the newest SSTable".

use std::collections::BTreeMap;

use tu_common::{Labels, Sample, SeriesId, Timestamp, Value};
pub use tu_compress::agg::AggKind;
use tu_compress::agg::AggState;

/// One matched timeseries with its samples in `[start, end)`, sorted by
/// timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesResult {
    pub id: SeriesId,
    pub labels: Labels,
    pub samples: Vec<Sample>,
}

/// The result of a Get: every matched series, sorted by label bytes.
pub type QueryResult = Vec<SeriesResult>;

/// Accumulates samples from multiple overlapping sources. Sources must be
/// offered in oldest-to-newest order; later offers override earlier ones
/// at equal timestamps.
#[derive(Debug, Default)]
pub struct SampleMerger {
    map: BTreeMap<Timestamp, Value>,
    start: Timestamp,
    end: Timestamp,
}

impl SampleMerger {
    /// Creates a merger clipping to `[start, end)`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        SampleMerger {
            map: BTreeMap::new(),
            start,
            end,
        }
    }

    /// Offers one sample.
    pub fn offer(&mut self, t: Timestamp, v: Value) {
        if t >= self.start && t < self.end {
            self.map.insert(t, v);
        }
    }

    /// Offers a batch of samples.
    pub fn offer_all(&mut self, samples: impl IntoIterator<Item = Sample>) {
        for s in samples {
            self.offer(s.t, s.v);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Finishes into sorted samples.
    pub fn finish(self) -> Vec<Sample> {
        self.map
            .into_iter()
            .map(|(t, v)| Sample::new(t, v))
            .collect()
    }
}

/// Step-aggregation shared by the engine's reference/fallback path and
/// the TSBS query patterns: one [`AggKind`] per aligned window of
/// `step_ms` over `[start, end)`. Samples must be sorted by timestamp
/// (as every query path produces them). Windows without a defined value
/// are omitted (no samples, or a rate over fewer than two samples).
///
/// This is the reference fold the aggregation pushdown in
/// `TimeUnion::query_aggregate` is pinned bit-identical against: both
/// run [`AggState`] over the same samples in the same order.
pub fn aggregate_step(
    kind: AggKind,
    samples: &[Sample],
    start: Timestamp,
    end: Timestamp,
    step_ms: i64,
) -> Vec<Sample> {
    let mut win = StepWindows::new(start, end, step_ms);
    for s in samples {
        win.observe(s.t, s.v);
    }
    win.finish(kind)
}

/// The per-series window accumulator behind [`aggregate_step`] *and* the
/// engine's pushdown path — both fold samples through the exact same
/// code, which is what makes pushdown results bit-identical to the
/// materialize-then-fold reference.
#[derive(Debug)]
pub(crate) struct StepWindows {
    start: Timestamp,
    end: Timestamp,
    step_ms: i64,
    pub(crate) buckets: Vec<(Timestamp, AggState)>,
}

impl StepWindows {
    pub(crate) fn new(start: Timestamp, end: Timestamp, step_ms: i64) -> Self {
        assert!(step_ms > 0);
        StepWindows {
            start,
            end,
            step_ms,
            buckets: Vec::new(),
        }
    }

    /// The aligned window start covering `t`.
    #[inline]
    pub(crate) fn bucket_of(&self, t: Timestamp) -> Timestamp {
        self.start + ((t - self.start) / self.step_ms) * self.step_ms
    }

    /// Folds one sample (samples must arrive in timestamp order; values
    /// outside `[start, end)` are clipped).
    #[inline]
    pub(crate) fn observe(&mut self, t: Timestamp, v: Value) {
        if t < self.start || t >= self.end {
            return;
        }
        // Fast path: most samples land in the current window, which a
        // range check answers without the bucket division.
        if let Some((b, st)) = self.buckets.last_mut() {
            if t >= *b && t - *b < self.step_ms {
                st.observe(t, v);
                return;
            }
        }
        let bucket = self.bucket_of(t);
        let mut st = AggState::new();
        st.observe(t, v);
        self.buckets.push((bucket, st));
    }

    /// Emits one sample per window with a defined aggregate value.
    pub(crate) fn finish(self, kind: AggKind) -> Vec<Sample> {
        self.buckets
            .into_iter()
            .filter_map(|(b, st)| st.value(kind).map(|v| Sample::new(b, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merger_clips_and_dedups_latest_wins() {
        let mut m = SampleMerger::new(10, 30);
        m.offer_all([
            Sample::new(5, 0.0),
            Sample::new(10, 1.0),
            Sample::new(20, 2.0),
        ]);
        m.offer(20, 9.0); // newer source overrides
        m.offer(30, 3.0); // end-exclusive
        assert_eq!(m.finish(), vec![Sample::new(10, 1.0), Sample::new(20, 9.0)]);
    }

    #[test]
    fn merger_sorts_out_of_order_offers() {
        let mut m = SampleMerger::new(0, 100);
        m.offer(50, 5.0);
        m.offer(10, 1.0);
        m.offer(30, 3.0);
        let out = m.finish();
        let ts: Vec<i64> = out.iter().map(|s| s.t).collect();
        assert_eq!(ts, vec![10, 30, 50]);
    }

    #[test]
    fn aggregate_max_buckets_correctly() {
        let samples: Vec<Sample> = (0..10)
            .map(|i| Sample::new(i * 60_000, (i % 4) as f64))
            .collect();
        let out = aggregate_step(AggKind::Max, &samples, 0, 600_000, 300_000);
        // Bucket 0 covers minutes 0-4 (values 0,1,2,3,0), bucket 1 covers
        // minutes 5-9 (values 1,2,3,0,1).
        assert_eq!(out, vec![Sample::new(0, 3.0), Sample::new(300_000, 3.0)]);
    }

    #[test]
    fn aggregate_max_omits_empty_windows() {
        let samples = vec![Sample::new(0, 1.0), Sample::new(900_000, 2.0)];
        let out = aggregate_step(AggKind::Max, &samples, 0, 1_200_000, 300_000);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].t, 900_000);
    }

    #[test]
    fn aggregate_step_covers_every_kind() {
        let samples = vec![
            Sample::new(0, 4.0),
            Sample::new(60_000, 1.0),
            Sample::new(120_000, 7.0),
            Sample::new(300_000, 10.0),
        ];
        let range = (0, 600_000, 300_000);
        let first = |out: Vec<Sample>| out.first().map(|s| s.v);
        let agg = |kind| aggregate_step(kind, &samples, range.0, range.1, range.2);
        assert_eq!(first(agg(AggKind::Sum)), Some(12.0));
        assert_eq!(first(agg(AggKind::Min)), Some(1.0));
        assert_eq!(first(agg(AggKind::Max)), Some(7.0));
        assert_eq!(first(agg(AggKind::Count)), Some(3.0));
        assert_eq!(first(agg(AggKind::Avg)), Some(4.0));
        // Rate over window 0: (7.0 - 4.0) / 120s.
        assert_eq!(first(agg(AggKind::Rate)), Some(3.0 / 120.0));
        // Window 1 has a single sample: rate is undefined and omitted.
        assert_eq!(agg(AggKind::Rate).len(), 1);
        assert_eq!(agg(AggKind::Sum).len(), 2);
    }
}
