//! Per-group memory objects (§3.1/§3.2, Figures 7 and 9).
//!
//! A group shares one timestamp column across its members and keeps one
//! value column per member. Both live in file-backed chunk arenas (one for
//! timestamp columns, one for value columns), mirroring Figure 9's "Group
//! MMap Timestamps" and "Group MMap Values" files.
//!
//! Open-chunk slot layouts (raw, so out-of-order rows can be edited in
//! place; compression happens at seal time via the NULL-extended XOR
//! group chunk format):
//!
//! * timestamp slot: `count × i64 LE`
//! * value slot: `count × (u8 present, f64 LE)` — row-aligned with the
//!   timestamp column; `present = 0` encodes NULL.

use std::collections::HashMap;

use tu_common::{Error, GroupId, Labels, Result, SeriesRef, Timestamp, Value};
use tu_compress::nullxor::GroupChunkEncoder;
use tu_mmap::{ChunkArena, ChunkHandle};

const TS_ROW: usize = 8;
const VAL_ROW: usize = 9;

/// Slot sizes for the two group arenas.
pub fn ts_slot_size(chunk_samples: usize) -> usize {
    chunk_samples * TS_ROW + 2
}

pub fn val_slot_size(chunk_samples: usize) -> usize {
    chunk_samples * VAL_ROW + 2
}

/// One member series of a group.
#[derive(Debug)]
pub struct Member {
    pub unique_tags: Labels,
    handle: ChunkHandle,
}

/// Result of inserting one row into a group head.
#[derive(Debug, PartialEq)]
pub enum GroupInsert {
    Buffered,
    /// The chunk filled up and was sealed.
    Sealed {
        first_ts: Timestamp,
        last_ts: Timestamp,
        chunk: Vec<u8>,
    },
    /// The row is older than the open chunk; the engine writes it to the
    /// tree directly.
    OlderThanHead,
}

/// The memory object of one timeseries group.
#[derive(Debug)]
pub struct GroupObject {
    pub gid: GroupId,
    pub group_tags: Labels,
    members: Vec<Member>,
    member_index: HashMap<Vec<u8>, SeriesRef>,
    ts_handle: ChunkHandle,
    pub seq: u64,
    pub last_ts: Timestamp,
    head_count: u16,
    head_first: Timestamp,
    head_last: Timestamp,
}

fn decode_ts(payload: &[u8]) -> Result<Vec<Timestamp>> {
    if payload.len() % TS_ROW != 0 {
        return Err(Error::corruption("group timestamp slot misaligned"));
    }
    Ok(payload
        .chunks_exact(TS_ROW)
        .map(tu_common::bytes::i64_le)
        .collect())
}

fn encode_ts(ts: &[Timestamp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ts.len() * TS_ROW);
    for t in ts {
        out.extend_from_slice(&t.to_le_bytes());
    }
    out
}

fn decode_vals(payload: &[u8]) -> Result<Vec<Option<Value>>> {
    if payload.len() % VAL_ROW != 0 {
        return Err(Error::corruption("group value slot misaligned"));
    }
    Ok(payload
        .chunks_exact(VAL_ROW)
        .map(|r| (r[0] != 0).then(|| tu_common::bytes::f64_le(&r[1..])))
        .collect())
}

fn encode_vals(vals: &[Option<Value>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * VAL_ROW);
    for v in vals {
        match v {
            Some(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_le_bytes());
            }
            None => {
                out.push(0);
                out.extend_from_slice(&0f64.to_le_bytes());
            }
        }
    }
    out
}

impl GroupObject {
    /// Creates the group, allocating its shared timestamp slot.
    pub fn new(gid: GroupId, group_tags: Labels, ts_arena: &ChunkArena) -> Result<Self> {
        let ts_handle = ts_arena.alloc()?;
        ts_arena.write(ts_handle, &[])?;
        Ok(GroupObject {
            gid,
            group_tags,
            members: Vec::new(),
            member_index: HashMap::new(),
            ts_handle,
            seq: 0,
            last_ts: i64::MIN,
            head_count: 0,
            head_first: 0,
            head_last: i64::MIN,
        })
    }

    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    pub fn member_tags(&self, slot: SeriesRef) -> Option<&Labels> {
        self.members.get(slot as usize).map(|m| &m.unique_tags)
    }

    /// Finds a member by its unique tags.
    pub fn member_slot(&self, unique_tags: &Labels) -> Option<SeriesRef> {
        self.member_index.get(&unique_tags.to_bytes()).copied()
    }

    /// Adds a member (§3.1 case 2: new timeseries joining). Earlier rows
    /// of the open chunk are backfilled with NULL. Returns the new slot.
    pub fn add_member(&mut self, val_arena: &ChunkArena, unique_tags: Labels) -> Result<SeriesRef> {
        let handle = val_arena.alloc()?;
        val_arena.write(handle, &encode_vals(&vec![None; self.head_count as usize]))?;
        let slot = self.members.len() as SeriesRef;
        self.member_index.insert(unique_tags.to_bytes(), slot);
        self.members.push(Member {
            unique_tags,
            handle,
        });
        Ok(slot)
    }

    /// Number of rows buffered in the open chunk.
    pub fn head_len(&self) -> u16 {
        self.head_count
    }

    pub fn head_first_ts(&self) -> Option<Timestamp> {
        (self.head_count > 0).then_some(self.head_first)
    }

    /// Inserts one row: a shared timestamp plus `(slot, value)` entries
    /// for the members present in this round; absent members get NULL
    /// (§3.1 cases 1 and 3). Handles in-head out-of-order rows (case 4).
    pub fn insert_row(
        &mut self,
        ts_arena: &ChunkArena,
        val_arena: &ChunkArena,
        t: Timestamp,
        entries: &[(SeriesRef, Value)],
        cap: usize,
    ) -> Result<GroupInsert> {
        for (slot, _) in entries {
            if *slot as usize >= self.members.len() {
                return Err(Error::invalid(format!(
                    "member slot {slot} out of range ({} members)",
                    self.members.len()
                )));
            }
        }
        if self.head_count > 0 && t < self.head_first {
            return Ok(GroupInsert::OlderThanHead);
        }
        let head_last = if self.head_count == 0 {
            i64::MIN
        } else {
            self.head_last
        };
        if self.head_count == 0 || t > head_last {
            // In-order append: extend the timestamp column and each value
            // column by one row — no read-modify-write.
            let provided: HashMap<SeriesRef, Value> = entries.iter().copied().collect();
            let n = self.head_count as usize;
            if n == 0 {
                ts_arena.write(self.ts_handle, &t.to_le_bytes())?;
                self.head_first = t;
            } else {
                ts_arena.append(self.ts_handle, n * TS_ROW, &t.to_le_bytes())?;
            }
            for (idx, member) in self.members.iter().enumerate() {
                let mut row = [0u8; VAL_ROW];
                if let Some(v) = provided.get(&(idx as SeriesRef)) {
                    row[0] = 1;
                    row[1..].copy_from_slice(&v.to_le_bytes());
                }
                if n == 0 {
                    val_arena.write(member.handle, &row)?;
                } else {
                    val_arena.append(member.handle, n * VAL_ROW, &row)?;
                }
            }
            self.head_count += 1;
            self.head_last = t;
        } else {
            // Out-of-order within the head, or duplicate timestamp: full
            // read-modify-write of the affected columns (rare path).
            let mut ts = decode_ts(&ts_arena.read(self.ts_handle)?)?;
            let (row, new_row) = match ts.binary_search(&t) {
                Ok(i) => (i, false),
                Err(i) => {
                    ts.insert(i, t);
                    (i, true)
                }
            };
            let provided: HashMap<SeriesRef, Value> = entries.iter().copied().collect();
            for (idx, member) in self.members.iter().enumerate() {
                let mut col = decode_vals(&val_arena.read(member.handle)?)?;
                let value = provided.get(&(idx as SeriesRef)).copied();
                if new_row {
                    col.insert(row, value);
                } else if let Some(v) = value {
                    col[row] = Some(v); // replace on duplicate timestamp
                }
                if new_row || value.is_some() {
                    val_arena.write(member.handle, &encode_vals(&col))?;
                }
            }
            if new_row {
                ts_arena.write(self.ts_handle, &encode_ts(&ts))?;
            }
            self.head_first = ts[0];
            self.head_last = *ts
                .last()
                .ok_or_else(|| Error::corruption("group head empty after insert"))?;
            self.head_count = ts.len() as u16;
        }
        self.last_ts = self.last_ts.max(t);
        if (self.head_count as usize) >= cap {
            let ts = decode_ts(&ts_arena.read(self.ts_handle)?)?;
            let chunk = self.build_chunk(&ts, val_arena)?;
            let first_ts = self.head_first;
            let last_ts = *ts
                .last()
                .ok_or_else(|| Error::corruption("sealing an empty group head"))?;
            self.clear_head(ts_arena, val_arena)?;
            return Ok(GroupInsert::Sealed {
                first_ts,
                last_ts,
                chunk,
            });
        }
        Ok(GroupInsert::Buffered)
    }

    fn build_chunk(&self, ts: &[Timestamp], val_arena: &ChunkArena) -> Result<Vec<u8>> {
        let mut enc = GroupChunkEncoder::new(self.members.len());
        let cols: Vec<Vec<Option<Value>>> = self
            .members
            .iter()
            .map(|m| decode_vals(&val_arena.read(m.handle)?))
            .collect::<Result<_>>()?;
        for (row, &t) in ts.iter().enumerate() {
            let values: Vec<Option<Value>> = cols.iter().map(|c| c[row]).collect();
            enc.append_row(t, &values)?;
        }
        Ok(enc.finish_framed())
    }

    fn clear_head(&mut self, ts_arena: &ChunkArena, val_arena: &ChunkArena) -> Result<()> {
        ts_arena.write(self.ts_handle, &[])?;
        for m in &self.members {
            val_arena.write(m.handle, &[])?;
        }
        self.head_count = 0;
        self.head_last = i64::MIN;
        Ok(())
    }

    /// Seals whatever is buffered.
    pub fn seal(
        &mut self,
        ts_arena: &ChunkArena,
        val_arena: &ChunkArena,
    ) -> Result<Option<(Timestamp, Timestamp, Vec<u8>)>> {
        if self.head_count == 0 {
            return Ok(None);
        }
        let ts = decode_ts(&ts_arena.read(self.ts_handle)?)?;
        let chunk = self.build_chunk(&ts, val_arena)?;
        let first_ts = self.head_first;
        let last_ts = *ts
            .last()
            .ok_or_else(|| Error::corruption("sealing an empty group head"))?;
        self.clear_head(ts_arena, val_arena)?;
        Ok(Some((first_ts, last_ts, chunk)))
    }

    /// Buffered rows of one member: `(timestamp, value)` for non-NULL rows.
    pub fn head_samples_of(
        &self,
        ts_arena: &ChunkArena,
        val_arena: &ChunkArena,
        slot: SeriesRef,
    ) -> Result<Vec<(Timestamp, Value)>> {
        let member = self
            .members
            .get(slot as usize)
            .ok_or_else(|| Error::invalid(format!("member slot {slot} out of range")))?;
        if self.head_count == 0 {
            return Ok(Vec::new());
        }
        let ts = decode_ts(&ts_arena.read(self.ts_handle)?)?;
        let col = decode_vals(&val_arena.read(member.handle)?)?;
        Ok(ts
            .iter()
            .zip(col)
            .filter_map(|(&t, v)| v.map(|v| (t, v)))
            .collect())
    }

    /// Releases all arena slots (retention purge of the whole group).
    pub fn release(self, ts_arena: &ChunkArena, val_arena: &ChunkArena) -> Result<()> {
        ts_arena.free(self.ts_handle)?;
        for m in self.members {
            val_arena.free(m.handle)?;
        }
        Ok(())
    }

    /// Iterates member slots with their unique tags.
    pub fn members(&self) -> impl Iterator<Item = (SeriesRef, &Labels)> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, m)| (i as SeriesRef, &m.unique_tags))
    }

    /// Rough heap footprint (head data is file-backed).
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.group_tags.heap_bytes()
            + self
                .members
                .iter()
                .map(|m| std::mem::size_of::<Member>() + m.unique_tags.heap_bytes())
                .sum::<usize>()
            + self.member_index.len() * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tu_common::GROUP_ID_FLAG;
    use tu_compress::nullxor::GroupChunkDecoder;
    use tu_mmap::pagecache::{PageCache, PAGE_SIZE};

    fn arenas(cap: usize) -> (tempfile::TempDir, ChunkArena, ChunkArena) {
        let dir = tempfile::tempdir().unwrap();
        let cache = PageCache::new(256 * PAGE_SIZE);
        let ts = ChunkArena::open(
            Arc::clone(&cache),
            dir.path().join("gts"),
            ts_slot_size(cap),
            64,
        )
        .unwrap();
        let vals =
            ChunkArena::open(cache, dir.path().join("gvals"), val_slot_size(cap), 256).unwrap();
        (dir, ts, vals)
    }

    fn tags(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    fn group(ts: &ChunkArena) -> GroupObject {
        GroupObject::new(1 | GROUP_ID_FLAG, tags(&[("host", "h1")]), ts).unwrap()
    }

    #[test]
    fn members_register_and_lookup() {
        let (_d, tsa, va) = arenas(8);
        let mut g = group(&tsa);
        let a = g.add_member(&va, tags(&[("metric", "cpu")])).unwrap();
        let b = g.add_member(&va, tags(&[("metric", "mem")])).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(g.member_slot(&tags(&[("metric", "mem")])), Some(1));
        assert_eq!(g.member_slot(&tags(&[("metric", "disk")])), None);
        assert_eq!(g.member_count(), 2);
    }

    #[test]
    fn rows_buffer_and_seal_with_nulls() {
        let (_d, tsa, va) = arenas(3);
        let mut g = group(&tsa);
        g.add_member(&va, tags(&[("m", "a")])).unwrap();
        g.add_member(&va, tags(&[("m", "b")])).unwrap();
        assert_eq!(
            g.insert_row(&tsa, &va, 10, &[(0, 1.0), (1, 10.0)], 3)
                .unwrap(),
            GroupInsert::Buffered
        );
        // Member 1 missing this round (§3.1 case 3).
        assert_eq!(
            g.insert_row(&tsa, &va, 20, &[(0, 2.0)], 3).unwrap(),
            GroupInsert::Buffered
        );
        match g
            .insert_row(&tsa, &va, 30, &[(0, 3.0), (1, 30.0)], 3)
            .unwrap()
        {
            GroupInsert::Sealed {
                first_ts,
                last_ts,
                chunk,
            } => {
                assert_eq!((first_ts, last_ts), (10, 30));
                let dec = GroupChunkDecoder::new(&chunk).unwrap();
                assert_eq!(dec.decode_timestamps().unwrap(), vec![10, 20, 30]);
                assert_eq!(
                    dec.decode_column(1).unwrap(),
                    vec![Some(10.0), None, Some(30.0)]
                );
            }
            other => panic!("expected seal, got {other:?}"),
        }
        assert_eq!(g.head_len(), 0);
    }

    #[test]
    fn late_member_gets_null_backfill() {
        let (_d, tsa, va) = arenas(8);
        let mut g = group(&tsa);
        g.add_member(&va, tags(&[("m", "a")])).unwrap();
        g.insert_row(&tsa, &va, 10, &[(0, 1.0)], 8).unwrap();
        g.insert_row(&tsa, &va, 20, &[(0, 2.0)], 8).unwrap();
        let b = g.add_member(&va, tags(&[("m", "b")])).unwrap();
        g.insert_row(&tsa, &va, 30, &[(0, 3.0), (b, 33.0)], 8)
            .unwrap();
        assert_eq!(
            g.head_samples_of(&tsa, &va, b).unwrap(),
            vec![(30, 33.0)],
            "backfilled rows must read as NULL"
        );
        assert_eq!(
            g.head_samples_of(&tsa, &va, 0).unwrap(),
            vec![(10, 1.0), (20, 2.0), (30, 3.0)]
        );
    }

    #[test]
    fn out_of_order_within_head_inserts_row() {
        let (_d, tsa, va) = arenas(8);
        let mut g = group(&tsa);
        g.add_member(&va, tags(&[("m", "a")])).unwrap();
        g.add_member(&va, tags(&[("m", "b")])).unwrap();
        g.insert_row(&tsa, &va, 10, &[(0, 1.0)], 8).unwrap();
        g.insert_row(&tsa, &va, 30, &[(0, 3.0)], 8).unwrap();
        g.insert_row(&tsa, &va, 20, &[(1, 22.0)], 8).unwrap();
        assert_eq!(
            g.head_samples_of(&tsa, &va, 0).unwrap(),
            vec![(10, 1.0), (30, 3.0)]
        );
        assert_eq!(g.head_samples_of(&tsa, &va, 1).unwrap(), vec![(20, 22.0)]);
        assert_eq!(g.head_len(), 3);
    }

    #[test]
    fn duplicate_timestamp_replaces_only_provided_members() {
        let (_d, tsa, va) = arenas(8);
        let mut g = group(&tsa);
        g.add_member(&va, tags(&[("m", "a")])).unwrap();
        g.add_member(&va, tags(&[("m", "b")])).unwrap();
        g.insert_row(&tsa, &va, 10, &[(0, 1.0), (1, 2.0)], 8)
            .unwrap();
        g.insert_row(&tsa, &va, 10, &[(1, 9.0)], 8).unwrap();
        assert_eq!(g.head_samples_of(&tsa, &va, 0).unwrap(), vec![(10, 1.0)]);
        assert_eq!(g.head_samples_of(&tsa, &va, 1).unwrap(), vec![(10, 9.0)]);
        assert_eq!(g.head_len(), 1);
    }

    #[test]
    fn older_than_head_signalled() {
        let (_d, tsa, va) = arenas(8);
        let mut g = group(&tsa);
        g.add_member(&va, tags(&[("m", "a")])).unwrap();
        g.insert_row(&tsa, &va, 1000, &[(0, 1.0)], 8).unwrap();
        assert_eq!(
            g.insert_row(&tsa, &va, 500, &[(0, 0.5)], 8).unwrap(),
            GroupInsert::OlderThanHead
        );
    }

    #[test]
    fn bad_slot_is_rejected() {
        let (_d, tsa, va) = arenas(8);
        let mut g = group(&tsa);
        g.add_member(&va, tags(&[("m", "a")])).unwrap();
        assert!(g.insert_row(&tsa, &va, 10, &[(5, 1.0)], 8).is_err());
        assert!(g.head_samples_of(&tsa, &va, 9).is_err());
    }

    #[test]
    fn manual_seal_round_trips() {
        let (_d, tsa, va) = arenas(32);
        let mut g = group(&tsa);
        g.add_member(&va, tags(&[("m", "a")])).unwrap();
        assert!(g.seal(&tsa, &va).unwrap().is_none());
        g.insert_row(&tsa, &va, 10, &[(0, 1.5)], 32).unwrap();
        let (first, last, chunk) = g.seal(&tsa, &va).unwrap().expect("sealed");
        assert_eq!((first, last), (10, 10));
        let dec = GroupChunkDecoder::new(&chunk).unwrap();
        assert_eq!(dec.decode_column(0).unwrap(), vec![Some(1.5)]);
        assert_eq!(g.head_len(), 0);
    }
}
