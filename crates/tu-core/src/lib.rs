//! The TimeUnion engine — the paper's primary contribution.
//!
//! Pulls the substrates together into the system of Figure 7/10:
//!
//! * the **unified data model** (§3.1): individual timeseries and
//!   timeseries groups behind one tag-based identifier space ([`model`]),
//! * **memory-efficient structures** (§3.2): the global trie-backed
//!   inverted index, plus per-series/group *memory objects* whose
//!   in-progress sample chunks live in file-backed chunk arenas so cold
//!   series can be swapped out ([`series`], [`group`]),
//! * the **elastic time-partitioned LSM-tree** (§3.3) as the persistent
//!   store for sealed chunks,
//! * the **operations** of §3.4: slow/fast-path Put for series and
//!   groups, and selector-based Get with merge iterators ([`engine`],
//!   [`query`]),
//! * sequence-ID **logging and recovery** (§3.3) via the catalog and WAL
//!   ([`catalog`], recovery in [`engine`]),
//! * the **grouping cost model** of Equations 1–6 ([`analysis`]),
//! * the **storage introspection plane**: per-query cost profiles
//!   ([`profile`]) and the stable JSON bodies behind the
//!   `/introspect/lsm`, `/introspect/partitions`, and `/costs`
//!   endpoints ([`introspect`]).

pub mod analysis;
pub mod catalog;
pub mod engine;
pub mod group;
pub mod introspect;
pub mod model;
pub mod profile;
pub mod query;
pub mod selfmon;
pub mod series;
pub mod shard;

pub use engine::{Options, TimeUnion};
pub use profile::{HeatContribution, QueryProfile, StageTiming, TierProfile};
pub use query::{aggregate_step, AggKind, QueryResult, SeriesResult};
pub use selfmon::{SelfMonitor, SelfmonOptions};
