//! JSON payloads behind the storage introspection endpoints.
//!
//! [`crate::TimeUnion::start_serving`] registers three extra endpoints on
//! the live plane; this module renders their bodies with stable,
//! hand-rolled JSON (field order never changes between scrapes):
//!
//! * `/introspect/lsm` — [`lsm_json`]: levels, partition boundaries,
//!   table inventory, stats-footer coverage, block-cache and bloom
//!   counters.
//! * `/introspect/partitions` — [`partitions_json`]: the LSM partition
//!   view joined with the partition heat registry (requests, bytes,
//!   decayed rate windows, hot/warm/cold class, last access).
//! * `/costs` — rendered by [`tu_cloud::ledger::CostLedger::to_json`];
//!   not duplicated here.

use tu_lsm::{LsmIntrospect, PartitionIntrospect, TableIntrospect};
use tu_obs::heat::{classify, HEAT_TIERS};
use tu_obs::{HeatSnapshot, TierHeat};

/// Escapes `"` and `\` for embedding in a JSON string literal (table
/// names are filesystem-safe, so control characters cannot appear).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn table_json(t: &TableIntrospect) -> String {
    format!(
        "{{\"name\":\"{}\",\"seq\":{},\"entries\":{},\"file_len\":{},\
         \"stats_chunks\":{},\"patches\":{}}}",
        esc(&t.name),
        t.seq,
        t.entries,
        t.file_len,
        t.stats_chunks,
        t.patches
    )
}

fn partition_core_json(p: &PartitionIntrospect) -> String {
    format!(
        "\"start_ms\":{},\"end_ms\":{},\"tier\":\"{}\",\"bytes\":{},\
         \"chunks\":{},\"stats_chunks\":{},\"patches\":{}",
        p.start_ms, p.end_ms, p.tier, p.bytes, p.chunks, p.stats_chunks, p.patches
    )
}

/// The `/introspect/lsm` body: tree geometry and table inventory, plus
/// the process-global cache/bloom read-path counters.
pub fn lsm_json(view: &LsmIntrospect, bloom_checks: u64, bloom_negatives: u64) -> String {
    let mut out = format!(
        "{{\"r1_ms\":{},\"r2_ms\":{},\"levels\":[",
        view.r1_ms, view.r2_ms
    );
    for (i, level) in view.levels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"level\":{},\"tier\":\"{}\",\"partitions\":[",
            level.level, level.tier
        ));
        for (j, p) in level.partitions.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str(&partition_core_json(p));
            out.push_str(",\"tables\":[");
            for (k, t) in p.tables.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&table_json(t));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push_str(&format!(
        "],\"cache\":{{\"shards\":{},\"used_bytes\":{},\"hits\":{},\
         \"misses\":{},\"evictions\":{}}},\"bloom\":{{\"checks\":{},\"negatives\":{}}}}}",
        view.cache.shards,
        view.cache.used_bytes,
        view.cache.hits,
        view.cache.misses,
        view.cache.evictions,
        bloom_checks,
        bloom_negatives
    ));
    out
}

fn tier_heat_json(h: &TierHeat) -> String {
    format!(
        "{{\"get_requests\":{},\"put_requests\":{},\"delete_requests\":{},\
         \"bytes_read\":{},\"bytes_written\":{},\"first_reads\":{},\
         \"last_access_ms\":{},\"rates\":{{\"1m\":{:.6},\"10m\":{:.6},\"1h\":{:.6}}}}}",
        h.get_requests,
        h.put_requests,
        h.delete_requests,
        h.bytes_read,
        h.bytes_written,
        h.first_reads,
        h.last_access_ms,
        h.rates[0],
        h.rates[1],
        h.rates[2]
    )
}

fn heat_cell_json(tiers: &[TierHeat; 2]) -> String {
    let mut out = String::from("{");
    for (i, name) in HEAT_TIERS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", name, tier_heat_json(&tiers[i])));
    }
    let combined: [f64; 3] = std::array::from_fn(|w| tiers.iter().map(|t| t.rates[w]).sum::<f64>());
    out.push_str(&format!(",\"class\":\"{}\"}}", classify(&combined)));
    out
}

/// The `/introspect/partitions` body: every LSM partition with its heat
/// cell joined in, plus heat-only partitions (data already compacted or
/// purged away) and the unattributed catch-all, so that summing every
/// heat cell in the document reproduces the `cloud.<tier>.*` counter
/// totals exactly.
pub fn partitions_json(view: &LsmIntrospect, heat: &HeatSnapshot) -> String {
    let empty = [TierHeat::default(), TierHeat::default()];
    let mut out = format!("{{\"at_ms\":{},\"partitions\":[", heat.at_ms);
    let lsm_parts = view.partitions();
    for (i, p) in lsm_parts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let cell = heat
            .partition(p.start_ms, p.end_ms)
            .map(|h| &h.tiers)
            .unwrap_or(&empty);
        out.push('{');
        out.push_str(&partition_core_json(p));
        out.push_str(&format!(
            ",\"tables\":{},\"heat\":{}}}",
            p.tables.len(),
            heat_cell_json(cell)
        ));
    }
    // Heat the registry still holds for time ranges the tree no longer
    // reports (merged-away boundaries, purged partitions).
    out.push_str("],\"unmapped\":[");
    let mut first = true;
    for h in &heat.partitions {
        let mapped = lsm_parts
            .iter()
            .any(|p| p.start_ms == h.key.start_ms && p.end_ms == h.key.end_ms);
        if mapped {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"start_ms\":{},\"end_ms\":{},\"heat\":{}}}",
            h.key.start_ms,
            h.key.end_ms,
            heat_cell_json(&h.tiers)
        ));
    }
    out.push_str(&format!(
        "],\"unattributed\":{}}}",
        heat_cell_json(&heat.unattributed)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_lsm::{CacheIntrospect, LevelIntrospect};
    use tu_obs::{PartitionHeat, PartitionKey};

    fn sample_view() -> LsmIntrospect {
        LsmIntrospect {
            r1_ms: 7_200_000,
            r2_ms: 86_400_000,
            levels: vec![
                LevelIntrospect {
                    level: 0,
                    tier: "block",
                    partitions: vec![PartitionIntrospect {
                        start_ms: 0,
                        end_ms: 7_200_000,
                        tier: "block",
                        bytes: 4096,
                        chunks: 12,
                        stats_chunks: 10,
                        patches: 0,
                        tables: vec![TableIntrospect {
                            name: "l0/000001.sst".to_string(),
                            seq: 1,
                            entries: 12,
                            file_len: 4096,
                            stats_chunks: 10,
                            patches: 0,
                        }],
                    }],
                },
                LevelIntrospect {
                    level: 2,
                    tier: "object",
                    partitions: vec![PartitionIntrospect {
                        start_ms: 0,
                        end_ms: 86_400_000,
                        tier: "object",
                        bytes: 65536,
                        chunks: 300,
                        stats_chunks: 300,
                        patches: 1,
                        tables: Vec::new(),
                    }],
                },
            ],
            cache: CacheIntrospect {
                shards: 16,
                used_bytes: 8192,
                hits: 40,
                misses: 9,
                evictions: 1,
            },
        }
    }

    fn sample_heat() -> HeatSnapshot {
        let mut hot = TierHeat::default();
        hot.get_requests = 5;
        hot.bytes_read = 2048;
        hot.last_access_ms = 1000;
        hot.rates = [3.0, 3.0, 3.0];
        HeatSnapshot {
            at_ms: 1234,
            partitions: vec![
                PartitionHeat {
                    key: PartitionKey {
                        start_ms: 0,
                        end_ms: 7_200_000,
                    },
                    tiers: [hot, TierHeat::default()],
                },
                PartitionHeat {
                    key: PartitionKey {
                        start_ms: -7_200_000,
                        end_ms: 0,
                    },
                    tiers: [TierHeat::default(), hot],
                },
            ],
            unattributed: [TierHeat::default(), TierHeat::default()],
        }
    }

    fn balanced(json: &str) {
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn lsm_json_is_stable_and_balanced() {
        let json = lsm_json(&sample_view(), 100, 93);
        balanced(&json);
        assert!(json.starts_with("{\"r1_ms\":7200000,\"r2_ms\":86400000,\"levels\":["));
        assert!(json.contains("\"level\":0,\"tier\":\"block\""));
        assert!(json.contains("\"name\":\"l0/000001.sst\",\"seq\":1"));
        assert!(json.contains("\"stats_chunks\":10"));
        assert!(json.contains("\"cache\":{\"shards\":16,\"used_bytes\":8192"));
        assert!(json.contains("\"bloom\":{\"checks\":100,\"negatives\":93}"));
        // Identical inputs render byte-identically (schema stability).
        assert_eq!(json, lsm_json(&sample_view(), 100, 93));
    }

    #[test]
    fn partitions_json_joins_heat_and_keeps_unmapped() {
        let json = partitions_json(&sample_view(), &sample_heat());
        balanced(&json);
        assert!(json.contains("\"at_ms\":1234"));
        // The L0 partition carries its heat cell.
        assert!(json.contains("\"start_ms\":0,\"end_ms\":7200000,\"tier\":\"block\""));
        assert!(json.contains("\"get_requests\":5"));
        assert!(json.contains("\"class\":\"hot\""));
        // The L2 partition has no heat yet: zero cell, cold.
        assert!(json.contains("\"class\":\"cold\""));
        // The heat-only partition lands under "unmapped".
        assert!(json.contains("\"unmapped\":[{\"start_ms\":-7200000,\"end_ms\":0"));
        assert!(json.contains("\"unattributed\":{"));
    }

    #[test]
    fn table_names_are_escaped() {
        let mut view = sample_view();
        view.levels[0].partitions[0].tables[0].name = "we\"ird\\name".to_string();
        let json = lsm_json(&view, 0, 0);
        balanced(&json);
        assert!(json.contains("we\\\"ird\\\\name"));
    }
}
