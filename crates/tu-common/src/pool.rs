//! A small scoped worker pool for fan-out/fan-in parallelism.
//!
//! Queries fan out across matched series (§3.4 runs one merge per matched
//! timeseries; the per-series work — block fetches, decompression, sample
//! merging — is independent), so the engine needs a way to run `n`
//! index-addressed tasks on `t` threads and collect the results *in task
//! order*. [`WorkerPool::run`] does exactly that on [`std::thread::scope`]:
//! no queues, no detached threads, no dependencies, and borrowing the
//! caller's state works because the threads cannot outlive the call.
//!
//! Determinism: results are returned indexed by task, so the output of
//! `run` is identical for every thread count (including 1, which runs
//! inline without spawning). Panics in a task propagate to the caller.
//!
//! Cost attribution: the caller's `tu-obs` trace contexts are captured
//! before spawning and attached inside every worker, so storage charges
//! made by pool tasks land on the operation that fanned out (the contexts
//! share one delta map, so the join merge is exact). The inline path needs
//! nothing — tasks already run under the caller's thread-local contexts.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::lockdep::{self, Mutex};

/// Environment variable overriding the query thread count
/// (`TU_QUERY_THREADS=1` forces sequential execution; CI runs the test
/// suite at both 1 and 8).
pub const QUERY_THREADS_ENV: &str = "TU_QUERY_THREADS";

/// Environment variable overriding the ingest thread count (batched
/// writer fan-out and the flush/compaction workers). Resolution mirrors
/// the query knob: env > `Options::ingest_threads` > cores capped at 8.
pub const INGEST_THREADS_ENV: &str = "TU_INGEST_THREADS";

/// A fixed-width scoped thread pool.
///
/// The pool is a plain value (just a thread count): threads are scoped to
/// each [`WorkerPool::run`] call, so there is no lifecycle to manage and a
/// pool can be constructed per call for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool of exactly `threads` workers (0 is clamped to 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// Resolves the thread count from, in priority order: the
    /// `TU_QUERY_THREADS` environment variable, the caller's configured
    /// value (`configured > 0`), and finally the machine's available
    /// parallelism (capped at 8 — query fan-out saturates well before the
    /// core counts of large hosts).
    pub fn resolve(configured: usize) -> Self {
        WorkerPool::resolve_env(QUERY_THREADS_ENV, configured)
    }

    /// [`WorkerPool::resolve`] generalized over the overriding environment
    /// variable, so the ingest path resolves through `TU_INGEST_THREADS`
    /// with the same env > configured > cores-capped-at-8 chain.
    pub fn resolve_env(var: &str, configured: usize) -> Self {
        if let Some(n) = env_threads_var(var) {
            return WorkerPool::new(n);
        }
        if configured > 0 {
            return WorkerPool::new(configured);
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        WorkerPool::new(cores.min(8))
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), ..., f(n-1)` across the pool and returns the
    /// results in task order. With one thread (or one task) everything
    /// runs inline on the caller's thread. Tasks are claimed from a shared
    /// cursor, so an expensive task does not hold up the rest of the pool.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n)
            .map(|_| Mutex::new(&lockdep::COMMON_POOL_SLOT, None))
            .collect();
        let trace = tu_obs::trace::current_handle();
        let selfmon = tu_obs::selfmon::current();
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(n) {
                s.spawn(|| {
                    let _attached = trace.as_ref().map(|h| h.attach());
                    let _selfmon = tu_obs::selfmon::reenter(selfmon);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let out = f(i);
                        *slots[i].lock() = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("every task index is claimed exactly once")
            })
            .collect()
    }
}

/// Parses `TU_QUERY_THREADS` if set to a positive integer.
pub fn env_threads() -> Option<usize> {
    env_threads_var(QUERY_THREADS_ENV)
}

/// Parses the given thread-count environment variable if set to a
/// positive integer.
pub fn env_threads_var(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_task_order() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let out = pool.run(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn zero_tasks_and_zero_threads_are_fine() {
        assert!(WorkerPool::new(0).run(0, |i| i).is_empty());
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert_eq!(WorkerPool::new(4).run(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let pool = WorkerPool::new(8);
        let out = pool.run(1000, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn tasks_can_borrow_caller_state() {
        let data: Vec<u64> = (0..100).collect();
        let sum: u64 = WorkerPool::new(4)
            .run(data.len(), |i| data[i] * 2)
            .iter()
            .sum();
        assert_eq!(sum, 2 * (0..100u64).sum::<u64>());
    }

    #[test]
    fn trace_context_propagates_to_workers() {
        for threads in [1, 2, 8] {
            let ctx = tu_obs::TraceContext::start("pool-test");
            let c = tu_obs::traced("common.pool.test_charges");
            WorkerPool::new(threads).run(24, |i| {
                c.add(1 + i as u64 % 2);
            });
            let summary = ctx.finish();
            // 12 tasks charge 1, 12 charge 2, on whatever worker ran them.
            assert_eq!(
                summary.counter("common.pool.test_charges"),
                36,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn selfmon_scope_propagates_to_workers() {
        for threads in [1, 2, 8] {
            let scope = tu_obs::selfmon::enter();
            let guarded = WorkerPool::new(threads).run(16, |_| tu_obs::selfmon::active());
            assert!(guarded.iter().all(|&g| g), "{threads} threads");
            drop(scope);
            let unguarded = WorkerPool::new(threads).run(16, |_| tu_obs::selfmon::active());
            assert!(unguarded.iter().all(|&g| !g), "{threads} threads");
        }
    }

    #[test]
    fn resolve_env_prefers_env_then_configured() {
        // A variable that is certainly unset: configured wins.
        assert_eq!(
            WorkerPool::resolve_env("TU_POOL_TEST_UNSET_VAR", 3).threads(),
            3
        );
        // Unset and unconfigured: cores capped at 8.
        let fallback = WorkerPool::resolve_env("TU_POOL_TEST_UNSET_VAR", 0).threads();
        assert!((1..=8).contains(&fallback));
        // Set: env wins over configured.
        std::env::set_var("TU_POOL_TEST_SET_VAR", "5");
        assert_eq!(
            WorkerPool::resolve_env("TU_POOL_TEST_SET_VAR", 3).threads(),
            5
        );
        std::env::remove_var("TU_POOL_TEST_SET_VAR");
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn task_panics_propagate() {
        WorkerPool::new(2).run(8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
