//! LEB128 varint and zigzag coding.
//!
//! Used by the SSTable format (restart-point offsets, shared-prefix lengths)
//! and by chunk serialization (sample counts, sequence IDs).

use crate::error::{Error, Result};

/// Maximum encoded length of a u64 varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `v` to `out` as an unsigned LEB128 varint.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` to `out` as a zigzag-encoded signed varint.
#[inline]
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag_encode(v));
}

/// Reads a u64 varint from the front of `buf`, returning the value and the
/// number of bytes consumed.
#[inline]
pub fn read_u64(buf: &[u8]) -> Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(Error::corruption("varint longer than 10 bytes"));
        }
        // The 10th byte may only contribute the low bit of the value.
        if shift == 63 && byte > 1 {
            return Err(Error::corruption("varint overflows u64"));
        }
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(Error::corruption("truncated varint"))
}

/// Reads a zigzag-encoded signed varint from the front of `buf`.
#[inline]
pub fn read_i64(buf: &[u8]) -> Result<(i64, usize)> {
    let (raw, n) = read_u64(buf)?;
    Ok((zigzag_decode(raw), n))
}

#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Number of bytes [`write_u64`] would emit for `v`.
#[inline]
pub fn encoded_len_u64(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_boundaries() {
        for &v in &[0u64, 1, 127, 128, 16383, 16384, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), encoded_len_u64(v));
            let (back, n) = read_u64(&buf).unwrap();
            assert_eq!((back, n), (v, buf.len()));
        }
    }

    #[test]
    fn signed_round_trip() {
        for &v in &[0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let (back, _) = read_i64(&buf).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(read_u64(&buf[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // 11 continuation bytes never terminate within the allowed length.
        let buf = [0x80u8; 11];
        assert!(read_u64(&buf).is_err());
        // A 10-byte varint whose final byte sets bits beyond u64 capacity.
        let mut over = vec![0xffu8; 9];
        over.push(0x02);
        assert!(read_u64(&over).is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip_u64(v: u64) {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let (back, n) = read_u64(&buf).unwrap();
            prop_assert_eq!(back, v);
            prop_assert_eq!(n, buf.len());
        }

        #[test]
        fn prop_round_trip_i64(v: i64) {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let (back, _) = read_i64(&buf).unwrap();
            prop_assert_eq!(back, v);
        }

        #[test]
        fn prop_zigzag_small_magnitudes_stay_small(v in -1000i64..1000) {
            prop_assert!(zigzag_encode(v) <= 2000);
        }
    }
}
