//! Global memory accounting used to reproduce the paper's memory
//! experiments (Figures 3, 13d, and 16).
//!
//! The paper measures resident set size under a 16 GB cgroup. Here a
//! counting allocator plays that role: it wraps the system allocator and
//! keeps live/peak byte counters. Binaries opt in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: tu_common::alloc::CountingAllocator = tu_common::alloc::CountingAllocator;
//! ```
//!
//! Engines additionally expose *structural* accounting (`heap_bytes()` style
//! methods) so the Figure 3b breakdown (inverted index vs. block metadata
//! vs. samples) can be reported per component, which RSS alone cannot do.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);
static TOTAL_ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// A [`GlobalAlloc`] wrapper over the system allocator that tracks live and
/// peak heap bytes.
pub struct CountingAllocator;

// SAFETY: every method delegates the actual allocation to `System`, which
// upholds the `GlobalAlloc` contract; this wrapper only adds relaxed atomic
// bookkeeping, which cannot allocate (no reentrancy) or unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards the caller's layout to `System.alloc` untouched; the
    // caller's obligations (non-zero size, valid layout) pass through.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    // SAFETY: `ptr`/`layout` come from a prior `alloc`/`realloc` on this
    // same allocator (caller's contract) and are forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // SAFETY: forwards to `System.realloc` under the caller's contract;
    // counters are only adjusted after the system call succeeds, so the
    // accounting never touches freed memory.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
            record_alloc(new_size);
        }
        p
    }
}

#[inline]
fn record_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    // Racy max update is fine: the peak is a monitoring statistic.
    let mut peak = PEAK_BYTES.load(Ordering::Relaxed);
    while live > peak {
        match PEAK_BYTES.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

/// Heap bytes currently allocated (only meaningful when
/// [`CountingAllocator`] is installed as the global allocator).
pub fn live_bytes() -> usize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of heap bytes since process start (or the last
/// [`reset_peak`]).
pub fn peak_bytes() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Total number of allocation calls observed.
pub fn total_allocs() -> usize {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

/// Resets the peak tracker to the current live size, so an experiment can
/// measure its own high-water mark.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Formats a byte count with binary-prefix units for reports.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_picks_sensible_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024 * 1024), "5.00 GiB");
    }

    // The counter functions are exercised for consistency even when the
    // counting allocator is not installed in the test harness.
    #[test]
    fn counters_are_readable() {
        let live = live_bytes();
        let peak = peak_bytes();
        assert!(peak >= live || peak == 0);
        reset_peak();
        assert!(peak_bytes() >= live_bytes() || peak_bytes() == 0);
    }
}
