//! Little-endian decoding helpers for fixed-width fields in on-disk
//! formats (SSTable footers, WAL records, chunk headers, catalog rows).
//!
//! Every storage crate used to spell this as
//! `u32::from_le_bytes(buf[i..i + 4].try_into().expect("4 bytes"))` — an
//! `expect` that the workspace lint's panic-discipline rule rightly
//! flags. These helpers centralize the conversion: callers bounds-check
//! the enclosing record once (as they already must to slice it) and then
//! decode fields without per-field `expect`s.
//!
//! Like the slice indexing it replaces, each helper panics via the normal
//! slice-bounds machinery if fewer than the required bytes are present;
//! callers decoding untrusted input must validate lengths first and
//! return [`crate::Error::Corruption`] (see `read_exact`-style framing in
//! tu-lsm's WAL and SSTable readers).

/// Decodes the first 4 bytes of `b` as a little-endian `u32`.
#[inline]
pub fn u32_le(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_le_bytes(a)
}

/// Decodes the first 8 bytes of `b` as a little-endian `u64`.
#[inline]
pub fn u64_le(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// Decodes the first 8 bytes of `b` as a little-endian `i64`.
#[inline]
pub fn i64_le(b: &[u8]) -> i64 {
    u64_le(b) as i64
}

/// Decodes the first 8 bytes of `b` as a little-endian `f64`.
#[inline]
pub fn f64_le(b: &[u8]) -> f64 {
    f64::from_bits(u64_le(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert_eq!(u32_le(&0xDEAD_BEEFu32.to_le_bytes()), 0xDEAD_BEEF);
        assert_eq!(u64_le(&u64::MAX.to_le_bytes()), u64::MAX);
        assert_eq!(i64_le(&(-42i64).to_le_bytes()), -42);
        assert_eq!(f64_le(&1.5f64.to_le_bytes()), 1.5);
        let nan = f64_le(&f64::NAN.to_le_bytes());
        assert!(nan.is_nan());
    }

    #[test]
    fn longer_slices_use_only_the_prefix() {
        let buf = [1u8, 0, 0, 0, 99, 99, 99, 99];
        assert_eq!(u32_le(&buf), 1);
    }

    #[test]
    #[should_panic]
    fn short_slice_panics_like_indexing() {
        u32_le(&[1, 2, 3]);
    }
}
