//! Order-preserving key encoding for the time-partitioned LSM-tree.
//!
//! The paper (§3.3, Figure 10) stores each chunk under a 16-byte key:
//! the series/group ID in the first 8 bytes and the chunk's starting
//! timestamp in the second 8 bytes, both big-endian, so that
//!
//! * chunks of the same series/group are adjacent (ID prefix), and
//! * within a series they are sorted by starting timestamp.
//!
//! Timestamps are signed; to keep byte order equal to numeric order the sign
//! bit is flipped before the big-endian write (the standard order-preserving
//! transform for two's-complement integers).

use crate::error::{Error, Result};
use crate::types::{SeriesId, Timestamp};

/// Length in bytes of an encoded chunk key.
pub const KEY_LEN: usize = 16;

/// Encodes `(id, start_ts)` into a 16-byte key whose lexicographic order
/// equals the order of `(id, start_ts)` tuples.
#[inline]
pub fn encode_key(id: SeriesId, start_ts: Timestamp) -> [u8; KEY_LEN] {
    let mut out = [0u8; KEY_LEN];
    out[..8].copy_from_slice(&id.to_be_bytes());
    out[8..].copy_from_slice(&((start_ts as u64) ^ (1 << 63)).to_be_bytes());
    out
}

/// Decodes a key produced by [`encode_key`].
#[inline]
pub fn decode_key(key: &[u8]) -> Result<(SeriesId, Timestamp)> {
    if key.len() != KEY_LEN {
        return Err(Error::corruption(format!(
            "chunk key must be {KEY_LEN} bytes, got {}",
            key.len()
        )));
    }
    let id = u64::from_be_bytes(key[..8].try_into().expect("checked length"));
    let ts_bits = u64::from_be_bytes(key[8..].try_into().expect("checked length"));
    Ok((id, (ts_bits ^ (1 << 63)) as i64))
}

/// Decodes only the series/group ID prefix of a key.
#[inline]
pub fn decode_id(key: &[u8]) -> Result<SeriesId> {
    if key.len() < 8 {
        return Err(Error::corruption("chunk key shorter than 8-byte ID prefix"));
    }
    Ok(u64::from_be_bytes(
        key[..8].try_into().expect("checked length"),
    ))
}

/// Decodes only the starting-timestamp suffix of a key.
#[inline]
pub fn decode_ts(key: &[u8]) -> Result<Timestamp> {
    decode_key(key).map(|(_, t)| t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for &(id, ts) in &[
            (0u64, 0i64),
            (1, -1),
            (42, 1_600_000_000_000),
            (u64::MAX, i64::MAX),
            (u64::MAX, i64::MIN),
        ] {
            let k = encode_key(id, ts);
            assert_eq!(decode_key(&k).unwrap(), (id, ts));
            assert_eq!(decode_id(&k).unwrap(), id);
            assert_eq!(decode_ts(&k).unwrap(), ts);
        }
    }

    #[test]
    fn byte_order_matches_tuple_order() {
        let tuples = [
            (0u64, i64::MIN),
            (0, -5),
            (0, 0),
            (0, 7),
            (0, i64::MAX),
            (1, i64::MIN),
            (1, 0),
            (u64::MAX, -3),
        ];
        for w in tuples.windows(2) {
            let a = encode_key(w[0].0, w[0].1);
            let b = encode_key(w[1].0, w[1].1);
            assert!(a < b, "{:?} should sort before {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn decode_rejects_bad_lengths() {
        assert!(decode_key(&[0; 15]).is_err());
        assert!(decode_key(&[0; 17]).is_err());
        assert!(decode_id(&[0; 7]).is_err());
    }
}
