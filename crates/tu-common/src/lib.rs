//! Shared foundation types for the TimeUnion workspace.
//!
//! This crate holds everything more than one subsystem needs and nothing
//! else: sample/identifier types, tag sets, order-preserving key encoding,
//! varint coding, error handling, a clock abstraction, and the global
//! memory-accounting hooks used to reproduce the paper's memory experiments
//! (Figures 3, 13d, and 16).

pub mod alloc;
pub mod bytes;
pub mod clock;
pub mod error;
pub mod keys;
pub mod pool;
pub mod types;
pub mod varint;

pub use error::{Error, Result};
pub use types::{
    GroupId, Labels, Sample, SeriesId, SeriesRef, TimeRange, Timestamp, Value, GROUP_ID_FLAG,
};
