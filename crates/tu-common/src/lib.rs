//! Shared foundation types for the TimeUnion workspace.
//!
//! This crate holds everything more than one subsystem needs and nothing
//! else: sample/identifier types, tag sets, order-preserving key encoding,
//! varint coding, error handling, a clock abstraction, and the global
//! memory-accounting hooks used to reproduce the paper's memory experiments
//! (Figures 3, 13d, and 16).

pub mod alloc;
pub mod bytes;
pub mod clock;
pub mod error;
pub mod keys;
pub mod pool;
pub mod types;
pub mod varint;

/// The debug-build runtime lock witness (lives in `tu-obs` because that
/// crate sits at the bottom of the dependency graph; re-exported here so
/// every subsystem wraps its locks through one path).
pub use tu_obs::lockdep;

pub use error::{Error, Result};
pub use types::{
    GroupId, Labels, Sample, SeriesId, SeriesRef, TimeRange, Timestamp, Value, GROUP_ID_FLAG,
};
