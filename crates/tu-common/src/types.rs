//! Core data-model types: timestamps, samples, tag sets, and identifiers.
//!
//! TimeUnion's unified data model (§3.1 of the paper) represents both
//! individual timeseries and timeseries groups. Both kinds are addressed by a
//! 64-bit identifier; the top bit distinguishes groups from individual series
//! so that a single key space (and a single inverted index) can cover both.

use std::fmt;

/// Milliseconds since the Unix epoch, as in Prometheus and the paper.
pub type Timestamp = i64;

/// A metric value. The paper fixes this to a 64-bit float.
pub type Value = f64;

/// Identifier bit marking an ID as a *group* rather than an individual
/// series. Group IDs double as postings IDs in the inverted index (§3.1).
pub const GROUP_ID_FLAG: u64 = 1 << 63;

/// Identifier of an individual timeseries (top bit clear) or of a group
/// (top bit set — see [`GROUP_ID_FLAG`]).
pub type SeriesId = u64;

/// Identifier of a timeseries group. Always has [`GROUP_ID_FLAG`] set.
pub type GroupId = u64;

/// Position of a member series inside its group's appending array (§3.4).
pub type SeriesRef = u32;

/// Returns true if `id` addresses a group.
#[inline]
pub fn is_group_id(id: SeriesId) -> bool {
    id & GROUP_ID_FLAG != 0
}

/// One data point: a timestamp and a metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    pub t: Timestamp,
    pub v: Value,
}

impl Sample {
    pub fn new(t: Timestamp, v: Value) -> Self {
        Sample { t, v }
    }
}

/// A half-open time range `[start, end)` in milliseconds.
///
/// All partition bookkeeping in the time-partitioned LSM-tree uses half-open
/// ranges so adjacent partitions tile the time axis without overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    pub start: Timestamp,
    pub end: Timestamp,
}

impl TimeRange {
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        debug_assert!(start <= end, "time range start must not exceed end");
        TimeRange { start, end }
    }

    /// The empty range at the origin.
    pub fn empty() -> Self {
        TimeRange { start: 0, end: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    pub fn len(&self) -> i64 {
        (self.end - self.start).max(0)
    }

    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// True when the two half-open ranges share at least one instant.
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// True when `other` lies entirely within `self`.
    pub fn covers(&self, other: &TimeRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// The smallest range covering both inputs.
    pub fn union(&self, other: &TimeRange) -> TimeRange {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        TimeRange::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// The overlap of the two ranges, or an empty range when disjoint.
    pub fn intersect(&self, other: &TimeRange) -> TimeRange {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start >= end {
            TimeRange::empty()
        } else {
            TimeRange::new(start, end)
        }
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A sorted, deduplicated set of tag pairs identifying a timeseries.
///
/// Tags are kept sorted by key so that equal identifier sets have equal
/// byte representations, which the trie index and group membership checks
/// rely on. The paper calls these "tag pairs"; Prometheus calls them labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    pub fn new() -> Self {
        Labels(Vec::new())
    }

    /// Builds a tag set from arbitrary pairs, sorting and deduplicating by
    /// key (last write wins on duplicates, matching Prometheus semantics).
    pub fn from_pairs<K: Into<String>, V: Into<String>>(
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> Self {
        let mut v: Vec<(String, String)> = pairs
            .into_iter()
            .map(|(k, val)| (k.into(), val.into()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v.dedup_by(|a, b| {
            if a.0 == b.0 {
                // Keep the later entry's value: move it into the survivor.
                std::mem::swap(&mut a.1, &mut b.1);
                true
            } else {
                false
            }
        });
        Labels(v)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.0[i].1.as_str())
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Inserts or replaces one tag pair, keeping sorted order.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        match self.0.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => self.0[i].1 = value,
            Err(i) => self.0.insert(i, (key, value)),
        }
    }

    /// Removes a tag pair by key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<String> {
        self.0
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.0.remove(i).1)
    }

    /// True when every pair in `other` also appears in `self`.
    pub fn contains_all(&self, other: &Labels) -> bool {
        other.iter().all(|(k, v)| self.get(k) == Some(v))
    }

    /// Splits this tag set into `(matching, rest)` where `matching` holds the
    /// pairs equal to pairs of `group_tags`. Used when converting a flat tag
    /// set into the group representation (Figure 6): the group tags are
    /// extracted, the remainder uniquely identifies the series in the group.
    pub fn split_group_tags(&self, group_tags: &Labels) -> (Labels, Labels) {
        let mut matching = Vec::new();
        let mut rest = Vec::new();
        for (k, v) in &self.0 {
            if group_tags.get(k) == Some(v.as_str()) {
                matching.push((k.clone(), v.clone()));
            } else {
                rest.push((k.clone(), v.clone()));
            }
        }
        (Labels(matching), Labels(rest))
    }

    /// Merges two tag sets; pairs in `other` win on key conflicts.
    pub fn merge(&self, other: &Labels) -> Labels {
        let mut out = self.clone();
        for (k, v) in other.iter() {
            out.set(k, v);
        }
        out
    }

    /// Canonical byte representation: `key1\x00value1\x00key2\x00value2...`.
    /// Equal tag sets produce equal bytes; used as hash-map keys and for the
    /// trie's concatenated `key$value` entries.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.approx_byte_len());
        for (k, v) in &self.0 {
            out.extend_from_slice(k.as_bytes());
            out.push(0);
            out.extend_from_slice(v.as_bytes());
            out.push(0);
        }
        out
    }

    /// Rough serialized size, used for capacity hints and space accounting.
    pub fn approx_byte_len(&self) -> usize {
        self.0.iter().map(|(k, v)| k.len() + v.len() + 2).sum()
    }

    /// Heap bytes retained by this tag set (for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.0.capacity() * std::mem::size_of::<(String, String)>()
            + self
                .0
                .iter()
                .map(|(k, v)| k.capacity() + v.capacity())
                .sum::<usize>()
    }
}

impl fmt::Display for Labels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}=\"{v}\"")?;
        }
        write!(f, "}}")
    }
}

impl<K: Into<String>, V: Into<String>> FromIterator<(K, V)> for Labels {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        Labels::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_sort_and_dedup_last_wins() {
        let l = Labels::from_pairs([("b", "2"), ("a", "1"), ("b", "3")]);
        assert_eq!(l.len(), 2);
        assert_eq!(l.get("a"), Some("1"));
        assert_eq!(l.get("b"), Some("3"));
    }

    #[test]
    fn labels_set_and_remove_keep_order() {
        let mut l = Labels::from_pairs([("m", "cpu")]);
        l.set("host", "h1");
        l.set("zone", "z");
        l.set("host", "h2");
        assert_eq!(l.get("host"), Some("h2"));
        let keys: Vec<&str> = l.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["host", "m", "zone"]);
        assert_eq!(l.remove("m"), Some("cpu".to_string()));
        assert_eq!(l.get("m"), None);
    }

    #[test]
    fn split_group_tags_partitions_pairs() {
        let l = Labels::from_pairs([("region", "1"), ("device", "7"), ("metric", "cpu")]);
        let group = Labels::from_pairs([("region", "1")]);
        let (shared, unique) = l.split_group_tags(&group);
        assert_eq!(shared, Labels::from_pairs([("region", "1")]));
        assert_eq!(
            unique,
            Labels::from_pairs([("device", "7"), ("metric", "cpu")])
        );
    }

    #[test]
    fn split_group_tags_requires_value_match() {
        let l = Labels::from_pairs([("region", "2"), ("metric", "cpu")]);
        let group = Labels::from_pairs([("region", "1")]);
        let (shared, unique) = l.split_group_tags(&group);
        assert!(shared.is_empty());
        assert_eq!(unique.len(), 2);
    }

    #[test]
    fn to_bytes_is_injective_for_distinct_sets() {
        let a = Labels::from_pairs([("a", "b")]);
        let b = Labels::from_pairs([("a", "b"), ("c", "d")]);
        let c = Labels::from_pairs([("ab", "")]);
        assert_ne!(a.to_bytes(), b.to_bytes());
        assert_ne!(a.to_bytes(), c.to_bytes());
    }

    #[test]
    fn time_range_relations() {
        let a = TimeRange::new(0, 10);
        let b = TimeRange::new(10, 20);
        let c = TimeRange::new(5, 15);
        assert!(
            !a.overlaps(&b),
            "half-open ranges touching at 10 are disjoint"
        );
        assert!(a.overlaps(&c));
        assert!(a.contains(0));
        assert!(!a.contains(10));
        assert_eq!(a.union(&b), TimeRange::new(0, 20));
        assert_eq!(a.intersect(&c), TimeRange::new(5, 10));
        assert!(a.intersect(&b).is_empty());
        assert!(TimeRange::new(0, 20).covers(&c));
    }

    #[test]
    fn group_flag_distinguishes_ids() {
        assert!(!is_group_id(7));
        assert!(is_group_id(7 | GROUP_ID_FLAG));
    }
}
