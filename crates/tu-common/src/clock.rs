//! Clock abstraction so engines and benches can run on wall-clock or
//! simulated time.
//!
//! Two places need time: (1) engines stamp "now" for retention and partition
//! decisions, and (2) the cloud-storage simulator accrues modelled latency.
//! Benchmarks use [`SimClock`] to advance time deterministically, making the
//! figure harness reproducible run-to-run.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::types::Timestamp;

/// A source of the current time in milliseconds since the Unix epoch.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds.
    fn now_ms(&self) -> Timestamp;
}

/// Wall-clock time from the operating system.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> Timestamp {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system time is before the Unix epoch")
            .as_millis() as Timestamp
    }
}

/// A manually-advanced clock for tests and deterministic benchmarks.
///
/// Cloning shares the underlying instant, so an engine and the test driving
/// it observe the same timeline.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicI64>,
}

impl SimClock {
    pub fn new(start_ms: Timestamp) -> Self {
        SimClock {
            now: Arc::new(AtomicI64::new(start_ms)),
        }
    }

    /// Moves the clock forward by `delta_ms` and returns the new time.
    pub fn advance(&self, delta_ms: i64) -> Timestamp {
        self.now.fetch_add(delta_ms, Ordering::SeqCst) + delta_ms
    }

    /// Jumps the clock to an absolute instant. Only moves forward.
    pub fn set(&self, t: Timestamp) {
        self.now.fetch_max(t, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now_ms(&self) -> Timestamp {
        self.now.load(Ordering::SeqCst)
    }
}

/// Shared handle to any clock implementation.
pub type SharedClock = Arc<dyn Clock>;

/// Convenience constructor for a shared wall clock.
pub fn system_clock() -> SharedClock {
    Arc::new(SystemClock)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances_and_shares_state() {
        let c = SimClock::new(1000);
        let c2 = c.clone();
        assert_eq!(c.now_ms(), 1000);
        assert_eq!(c.advance(500), 1500);
        assert_eq!(c2.now_ms(), 1500, "clones share the same timeline");
    }

    #[test]
    fn sim_clock_set_never_goes_backwards() {
        let c = SimClock::new(1000);
        c.set(500);
        assert_eq!(c.now_ms(), 1000);
        c.set(2000);
        assert_eq!(c.now_ms(), 2000);
    }

    #[test]
    fn system_clock_is_monotonic_enough() {
        let c = SystemClock;
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
        assert!(a > 1_600_000_000_000, "system time should be after 2020");
    }
}
