//! Error type shared across all TimeUnion crates.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Unified error type for every TimeUnion subsystem.
///
/// Variants are deliberately coarse: callers dispatch on broad categories
/// (retryable I/O vs. permanent corruption vs. caller mistakes), while the
/// embedded message carries the specific context for humans.
#[derive(Debug)]
pub enum Error {
    /// An operating-system level I/O failure.
    Io(std::io::Error),
    /// Stored bytes failed validation (bad magic, CRC mismatch, truncation).
    Corruption(String),
    /// The caller passed an argument the API cannot honour.
    InvalidArgument(String),
    /// The requested series, group, object, or key does not exist.
    NotFound(String),
    /// The engine is shutting down or the component was already closed.
    Closed(String),
    /// A capacity or configuration limit was exceeded.
    LimitExceeded(String),
}

impl Error {
    /// Shorthand for a [`Error::Corruption`] with a formatted message.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Shorthand for a [`Error::InvalidArgument`] with a formatted message.
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Shorthand for a [`Error::NotFound`] with a formatted message.
    pub fn not_found(msg: impl Into<String>) -> Self {
        Error::NotFound(msg.into())
    }

    /// True if the error indicates on-disk corruption rather than a caller
    /// mistake or environmental failure.
    pub fn is_corruption(&self) -> bool {
        matches!(self, Error::Corruption(_))
    }

    /// True if the error is a not-found lookup miss.
    pub fn is_not_found(&self) -> bool {
        matches!(self, Error::NotFound(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Closed(m) => write!(f, "closed: {m}"),
            Error::LimitExceeded(m) => write!(f, "limit exceeded: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::corruption("bad magic in sstable footer");
        assert_eq!(e.to_string(), "corruption: bad magic in sstable footer");
        assert!(e.is_corruption());
        assert!(!e.is_not_found());
    }

    #[test]
    fn io_error_converts_and_chains_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn not_found_helper_sets_variant() {
        let e = Error::not_found("series 42");
        assert!(e.is_not_found());
        assert_eq!(e.to_string(), "not found: series 42");
    }
}
