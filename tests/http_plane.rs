//! The live observability plane, end to end: a real engine serving
//! `/metrics`, `/healthz`, `/readyz`, and `/vitals` over its embedded
//! HTTP server while ingest runs against it.
//!
//! Each test opens its own engine on `127.0.0.1:0` (a fresh free port),
//! so the tests parallelize without port clashes. The `tu-obs` registry
//! is process-global and shared across the tests in this binary, so
//! assertions on shared metric names are lower bounds / monotonicity,
//! never exact equalities.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use timeunion::engine::{Options, Selector, TimeUnion};
use timeunion::lsm::TreeOptions;
use timeunion::model::Labels;
use tu_cloud::cost::LatencyMode;
use tu_common::clock::SimClock;

fn opts() -> Options {
    Options {
        chunk_samples: 8,
        latency: LatencyMode::Off,
        tree: TreeOptions {
            memtable_bytes: 16 << 10,
            max_sstable_bytes: 16 << 10,
            ..TreeOptions::default()
        },
        serve_addr: Some("127.0.0.1:0".to_string()),
        ..Options::default()
    }
}

fn open_serving(dir: &std::path::Path, opts: Options) -> (Arc<TimeUnion>, SocketAddr) {
    let db = Arc::new(TimeUnion::open(dir, opts).unwrap());
    let addr = db
        .serve_if_configured()
        .unwrap()
        .expect("serve_addr was configured");
    (db, addr)
}

/// Minimal HTTP/1.0-style client: one request, read to EOF (the server
/// always answers `Connection: close`). Returns the raw response.
fn raw_request(addr: SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request).unwrap();
    // Read errors are tolerated: a server rejecting an oversized request
    // closes with unread input still buffered, which surfaces client-side
    // as a connection reset after (usually) delivering the response.
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    String::from_utf8_lossy(&response).into_owned()
}

fn get(addr: SocketAddr, path: &str) -> String {
    raw_request(addr, format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())
}

fn status_of(response: &str) -> u32 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"))
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

#[test]
fn concurrent_scrapes_during_ingest_always_parse() {
    let dir = tempfile::tempdir().unwrap();
    let (db, addr) = open_serving(dir.path(), opts());

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let ingester = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let labels = Labels::from_pairs([("metric", "scrape_load"), ("host", "h1")]);
            let id = db.put(&labels, 0, 0.0).unwrap();
            let mut t = 1i64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                db.put_by_id(id, t * 1_000, t as f64).unwrap();
                t += 1;
            }
            t
        })
    };

    // Several scraper threads hammer the plane while ingest runs. Every
    // single response must be a valid Prometheus exposition, and the
    // counters each thread sees must be monotone across its scrapes.
    let scrapers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut last_ingested = 0u64;
                let mut last_requests = 0u64;
                for _ in 0..10 {
                    let response = get(addr, "/metrics");
                    assert_eq!(status_of(&response), 200, "{response:?}");
                    let parsed = timeunion::obs::parse_prometheus_text(body_of(&response))
                        .expect("every scrape under load parses");
                    let ingested = parsed.counters["core_ingest_samples"];
                    let requests = parsed.counters["obs_http_requests"];
                    assert!(ingested >= last_ingested, "counter went backwards");
                    assert!(requests >= last_requests, "counter went backwards");
                    last_ingested = ingested;
                    last_requests = requests;
                }
                last_ingested
            })
        })
        .collect();
    for scraper in scrapers {
        assert!(scraper.join().unwrap() > 0, "scrapes saw live ingest");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    assert!(ingester.join().unwrap() > 1);

    // The JSON twin and the index serve too.
    let json = get(addr, "/metrics.json");
    assert_eq!(status_of(&json), 200);
    assert!(body_of(&json).contains("\"counters\""), "{json:?}");
    assert_eq!(status_of(&get(addr, "/")), 200);

    db.stop_serving();
}

#[test]
fn malformed_requests_leave_the_plane_serving() {
    let dir = tempfile::tempdir().unwrap();
    let (db, addr) = open_serving(dir.path(), opts());

    for (request, expected) in [
        (&b"POST /metrics HTTP/1.1\r\n\r\n"[..], 405),
        (&b"NONSENSE\r\n\r\n"[..], 400),
        (&b"GET /metrics SMTP/9\r\n\r\n"[..], 400),
        (&b"GET /metrics HTTP/1.1 extra\r\n\r\n"[..], 400),
        (&b"GET metrics HTTP/1.1\r\n\r\n"[..], 400),
        (&b"\xff\xfe\xfd garbage \xff\r\n\r\n"[..], 400),
    ] {
        let response = raw_request(addr, request);
        assert_eq!(
            status_of(&response),
            expected,
            "{request:?} -> {response:?}"
        );
    }
    // An oversized request head is cut off and rejected. The 400 may be
    // lost to the reset that follows the server's early close — the pinned
    // invariant is that the request is never served and the server stays up.
    let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64 << 10));
    let response = raw_request(addr, huge.as_bytes());
    assert!(
        response.is_empty() || status_of(&response) == 400,
        "{response:?}"
    );

    // None of that brought the server down.
    let response = get(addr, "/healthz");
    assert_eq!(status_of(&response), 200, "{response:?}");
    db.stop_serving();
}

#[test]
fn health_endpoints_flip_with_engine_state() {
    let dir = tempfile::tempdir().unwrap();
    let (db, addr) = open_serving(dir.path(), opts());

    let healthz = get(addr, "/healthz");
    assert_eq!(status_of(&healthz), 200);
    assert!(
        body_of(&healthz).contains("\"status\":\"ok\""),
        "{healthz:?}"
    );
    assert!(body_of(&healthz).contains("\"ready\":true"), "{healthz:?}");
    assert_eq!(status_of(&get(addr, "/readyz")), 200);

    // Draining flips readiness and (via the shutdown check) liveness.
    db.begin_shutdown();
    let healthz = get(addr, "/healthz");
    assert_eq!(status_of(&healthz), 503, "{healthz:?}");
    assert!(body_of(&healthz).contains("\"ready\":false"), "{healthz:?}");
    let readyz = get(addr, "/readyz");
    assert_eq!(status_of(&readyz), 503, "{readyz:?}");

    db.stop_serving();
}

#[test]
fn vitals_report_nonzero_windowed_rates_under_load() {
    let dir = tempfile::tempdir().unwrap();
    let clock = SimClock::new(0);
    let mut o = opts();
    o.clock = Arc::new(clock.clone());
    let (db, addr) = open_serving(dir.path(), o);
    let monitor = db.monitor().expect("serving engine has a monitor");

    // Before two samples exist the endpoint warms up rather than erroring.
    // (The background sampler may already have taken its first sample.)
    monitor.sample();

    let labels = Labels::from_pairs([("metric", "vitals_load"), ("host", "h1")]);
    let id = db.put(&labels, 0, 0.0).unwrap();
    for t in 1..2_000i64 {
        db.put_by_id(id, t * 1_000, t as f64).unwrap();
    }
    db.flush_all().unwrap();
    db.sync().unwrap();
    db.query(&[Selector::exact("metric", "vitals_load")], 0, i64::MAX / 4)
        .unwrap();

    // Ten simulated seconds pass; the window is the oldest→newest span,
    // so the load above lands inside it.
    clock.advance(10_000);
    monitor.sample();

    let vitals = monitor.vitals().expect("two samples -> vitals");
    assert!(vitals.window_ms >= 10_000, "{vitals:?}");
    assert!(vitals.ingest_samples_per_s > 0.0, "{vitals:?}");
    assert!(vitals.queries_per_s > 0.0, "{vitals:?}");
    // flush_all + sync pushed WAL batches and SSTables to the fast tier.
    assert!(vitals.block.put_per_s > 0.0, "{vitals:?}");
    assert!(vitals.wal_flushed_bytes_per_s > 0.0, "{vitals:?}");

    // The endpoint serves the same numbers.
    let response = get(addr, "/vitals");
    assert_eq!(status_of(&response), 200);
    let body = body_of(&response);
    assert!(!body.contains("warming-up"), "{body:?}");
    assert!(body.contains("\"ingest_samples_per_s\":"), "{body:?}");
    assert!(body.contains("\"block\":"), "{body:?}");

    db.stop_serving();
}
