//! Parallel ingest determinism and durability: for any ingest thread
//! count, `TimeUnion::put_batch` must leave the engine in exactly the
//! same logical state — same chunk boundaries, same compressed chunk
//! bytes, same head samples — as the sequential path, the group-commit
//! WAL must recover everything durable after a torn tail, and trace
//! attribution must stay exact when a batch fans out across workers.

use rand::{Rng, SeedableRng};
use timeunion::engine::{Options, Selector, TimeUnion};
use timeunion::lsm::TreeOptions;
use timeunion::model::Labels;
use tu_cloud::cost::LatencyMode;

const MIN: i64 = 60_000;

fn opts() -> Options {
    Options {
        chunk_samples: 8,
        wal_batch_records: 16,
        latency: LatencyMode::Virtual,
        tree: TreeOptions {
            memtable_bytes: 16 << 10,
            max_sstable_bytes: 16 << 10,
            ..TreeOptions::default()
        },
        ..Options::default()
    }
}

/// Builds one fresh engine, runs a seeded out-of-order batched workload
/// at the given ingest width, and returns the engine's state digest.
/// Everything except the thread count is identical across calls: same
/// seed, same rng draw order, same series creation order (hence the same
/// series IDs), same flush points.
fn digest_at(threads: usize) -> String {
    let dir = tempfile::tempdir().unwrap();
    let db = TimeUnion::open(dir.path(), opts()).unwrap();
    db.set_ingest_threads(threads);
    assert_eq!(db.ingest_threads(), threads);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEFCAFE);

    // 24 individual series over 4 metrics, created sequentially so IDs
    // are deterministic.
    let ids: Vec<u64> = (0..24)
        .map(|s| {
            let labels = Labels::from_pairs([
                ("metric", format!("m{}", s % 4).as_str()),
                ("host", format!("h{s}").as_str()),
            ]);
            db.put(&labels, 0, s as f64).unwrap()
        })
        .collect();
    // One 5-member group, fed sequentially between batches so the digest
    // also covers group state.
    let gtags = Labels::from_pairs([("job", "node"), ("instance", "i0")]);
    let members: Vec<Labels> = (0..5)
        .map(|m| Labels::from_pairs([("cpu", format!("c{m}").as_str())]))
        .collect();
    let (gid, refs) = db.put_group(&gtags, &members, 0, &[0.0; 5]).unwrap();

    for round in 0..30 {
        // Mostly in-order timestamps with a deliberate out-of-order tail.
        let base: i64 = rng.gen_range(1..600i64) * MIN;
        let mut batch = Vec::new();
        for &id in &ids {
            for k in 0..4i64 {
                let jitter: i64 = rng.gen_range(-5 * MIN..5 * MIN);
                batch.push((id, (base + jitter + k).max(1), rng.gen_range(0.0..100.0)));
            }
        }
        db.put_batch(&batch).unwrap();
        let values: Vec<f64> = refs.iter().map(|_| rng.gen_range(0.0..1.0)).collect();
        db.put_group_fast(gid, &refs, base, &values).unwrap();
        if round == 15 {
            // Mid-stream flush so the final state spans SSTables on both
            // tiers, memtable entries, and fresh head chunks.
            db.flush_all().unwrap();
        }
    }
    db.state_digest().unwrap()
}

#[test]
fn parallel_ingest_state_is_identical_across_thread_counts() {
    let baseline = digest_at(1);
    for threads in [2, 8] {
        assert_eq!(
            digest_at(threads),
            baseline,
            "ingest width {threads} changed the engine state"
        );
    }
}

#[test]
fn torn_wal_tail_recovers_under_group_commit() {
    let dir = tempfile::tempdir().unwrap();
    let steps = 49i64;
    {
        let db = TimeUnion::open(dir.path().join("db"), opts()).unwrap();
        db.set_ingest_threads(4);
        let ids: Vec<u64> = (0..8)
            .map(|s| {
                let labels = Labels::from_pairs([("metric", format!("t{s}").as_str())]);
                db.put(&labels, 0, 0.0).unwrap()
            })
            .collect();
        let mut batch = Vec::new();
        for step in 1..=steps {
            for &id in &ids {
                batch.push((id, step * 1000, (id as i64 * step) as f64));
            }
        }
        // put_batch returns only after a group-commit wave made every
        // record durable; sync() persists catalog/index as well.
        db.put_batch(&batch).unwrap();
        db.sync().unwrap();
        // Unclean shutdown: no flush_all, the samples live in the WAL.
    }
    // A crash mid-append leaves a torn tail after the last durable wave.
    let wal = dir
        .path()
        .join("db")
        .join("block")
        .join("wal")
        .join("engine.log");
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&[0xAB; 13]).unwrap();
    }
    let db = TimeUnion::open(dir.path().join("db"), opts()).unwrap();
    for s in 0..8 {
        let res = db
            .query(
                &[Selector::exact("metric", format!("t{s}"))],
                0,
                i64::MAX / 2,
            )
            .unwrap();
        assert_eq!(res.len(), 1, "series t{s}");
        assert_eq!(
            res[0].samples.len() as i64,
            steps + 1,
            "series t{s} lost durable samples to the torn tail"
        );
    }
}

#[test]
fn per_writer_trace_attribution_is_exact() {
    let dir = tempfile::tempdir().unwrap();
    let db = TimeUnion::open(dir.path(), opts()).unwrap();
    db.set_ingest_threads(8);
    let ids: Vec<u64> = (0..16)
        .map(|s| {
            let labels = Labels::from_pairs([("metric", format!("w{s}").as_str())]);
            db.put(&labels, 0, 0.0).unwrap()
        })
        .collect();

    // Two concurrent writer clients, each under its own trace context.
    // Each batch fans out across the shared 8-wide ingest pool, and the
    // workers charge the *spawning* writer's context — so each summary
    // must report exactly its own samples, even though the two batches
    // race in the same engine and share group-commit waves.
    let writer = |n_rounds: i64, t0: i64| {
        let ctx = timeunion::obs::TraceContext::start("writer");
        let mut batch = Vec::new();
        for step in 0..n_rounds {
            for &id in &ids {
                batch.push((id, t0 + step * 1000, step as f64));
            }
        }
        db.put_batch(&batch).unwrap();
        (ctx.finish(), batch.len() as u64)
    };
    let (a, b) = std::thread::scope(|s| {
        let ha = s.spawn(|| writer(20, 1_000));
        let hb = s.spawn(|| writer(31, 50_000_000));
        (ha.join().unwrap(), hb.join().unwrap())
    });
    assert_eq!(a.0.counter("core.ingest.samples"), a.1);
    assert_eq!(b.0.counter("core.ingest.samples"), b.1);

    // The fan-out itself is visible in the global registry.
    let snap = timeunion::obs::global().snapshot();
    assert!(snap.counter("core.ingest.parallel.batches").unwrap_or(0) >= 2);
    assert!(snap.counter("core.ingest.parallel.tasks").unwrap_or(0) >= 2 * ids.len() as u64);
    assert_eq!(snap.gauge("core.ingest.parallel.threads"), Some(8));
}
