//! Cross-crate property tests: randomized workloads against reference
//! models, exercising the whole stack.

use proptest::prelude::*;
use std::collections::BTreeMap;

use timeunion::engine::{Options, Selector, TimeUnion};
use timeunion::lsm::TreeOptions;
use timeunion::model::Labels;

fn small_options() -> Options {
    Options {
        chunk_samples: 8,
        index_slots_per_segment: 1 << 14,
        wal_batch_records: 8,
        tree: TreeOptions {
            memtable_bytes: 16 << 10,
            l0_partition_ms: 60_000,
            l2_partition_ms: 4 * 60_000,
            partition_min_ms: 30_000,
            max_sstable_bytes: 32 << 10,
            ..TreeOptions::default()
        },
        ..Options::default()
    }
}

/// One randomized operation against the engine.
#[derive(Debug, Clone)]
enum Op {
    /// Insert into series `s` at timestamp `t` (may be out of order).
    Put { series: u8, t: i64, v: u32 },
    /// Force heads + tree down to the slow tier.
    FlushAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        20 => (0u8..6, 0i64..20 * 60_000, any::<u32>())
            .prop_map(|(series, t, v)| Op::Put { series, t, v }),
        1 => Just(Op::FlushAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The engine returns exactly the newest value per (series, ts),
    /// regardless of ordering, duplicates, seals, and compactions.
    #[test]
    fn engine_matches_model_under_out_of_order_writes(
        ops in proptest::collection::vec(op_strategy(), 1..250),
    ) {
        let dir = tempfile::tempdir().unwrap();
        let db = TimeUnion::open(dir.path().join("db"), small_options()).unwrap();
        let mut model: BTreeMap<(u8, i64), f64> = BTreeMap::new();
        let mut ids: BTreeMap<u8, u64> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put { series, t, v } => {
                    let vf = *v as f64;
                    let id = match ids.get(series) {
                        Some(id) => *id,
                        None => {
                            let l = Labels::from_pairs([
                                ("metric", "m"),
                                ("series", &format!("s{series}")),
                            ]);
                            let id = db.put(&l, *t, vf).unwrap();
                            ids.insert(*series, id);
                            model.insert((*series, *t), vf);
                            continue;
                        }
                    };
                    db.put_by_id(id, *t, vf).unwrap();
                    model.insert((*series, *t), vf);
                }
                Op::FlushAll => db.flush_all().unwrap(),
            }
        }
        for (series, _) in ids {
            let sel = vec![
                Selector::exact("metric", "m"),
                Selector::exact("series", format!("s{series}")),
            ];
            let got = db.query(&sel, 0, i64::MAX / 4).unwrap();
            let expect: Vec<(i64, f64)> = model
                .range((series, i64::MIN)..=(series, i64::MAX))
                .map(|((_, t), v)| (*t, *v))
                .collect();
            prop_assert_eq!(got.len(), usize::from(!expect.is_empty()));
            if let Some(series_result) = got.first() {
                let got_pairs: Vec<(i64, f64)> =
                    series_result.samples.iter().map(|s| (s.t, s.v)).collect();
                prop_assert_eq!(got_pairs, expect);
            }
        }
    }

    /// Range queries clip exactly to [start, end).
    #[test]
    fn query_ranges_clip_exactly(
        n in 1usize..120,
        start in 0i64..100_000,
        len in 1i64..100_000,
    ) {
        let dir = tempfile::tempdir().unwrap();
        let db = TimeUnion::open(dir.path().join("db"), small_options()).unwrap();
        let l = Labels::from_pairs([("metric", "clip")]);
        let id = db.put(&l, 0, 0.0).unwrap();
        for i in 1..n as i64 {
            db.put_by_id(id, i * 1_000, i as f64).unwrap();
        }
        let end = start + len;
        let got = db.query(&[Selector::exact("metric", "clip")], start, end).unwrap();
        let expect: Vec<i64> = (0..n as i64)
            .map(|i| i * 1_000)
            .filter(|t| *t >= start && *t < end)
            .collect();
        let got_ts: Vec<i64> = got
            .first()
            .map(|s| s.samples.iter().map(|x| x.t).collect())
            .unwrap_or_default();
        prop_assert_eq!(got_ts, expect);
    }

    /// Recovery reproduces the exact pre-crash state for random workloads.
    #[test]
    fn recovery_is_exact(
        writes in proptest::collection::vec(
            (0u8..4, 0i64..500_000, any::<u32>()),
            1..120,
        ),
    ) {
        let dir = tempfile::tempdir().unwrap();
        let mut model: BTreeMap<(u8, i64), f64> = BTreeMap::new();
        {
            let db = TimeUnion::open(dir.path().join("db"), small_options()).unwrap();
            for (series, t, v) in &writes {
                let l = Labels::from_pairs([("s", &format!("x{series}"))]);
                db.put(&l, *t, *v as f64).unwrap();
                model.insert((*series, *t), *v as f64);
            }
            db.sync().unwrap();
        }
        let db = TimeUnion::open(dir.path().join("db"), small_options()).unwrap();
        for series in 0u8..4 {
            let expect: Vec<(i64, f64)> = model
                .range((series, i64::MIN)..=(series, i64::MAX))
                .map(|((_, t), v)| (*t, *v))
                .collect();
            let got = db
                .query(&[Selector::exact("s", format!("x{series}"))], 0, i64::MAX / 4)
                .unwrap();
            if expect.is_empty() {
                prop_assert!(got.is_empty());
            } else {
                let got_pairs: Vec<(i64, f64)> =
                    got[0].samples.iter().map(|s| (s.t, s.v)).collect();
                prop_assert_eq!(got_pairs, expect);
            }
        }
    }
}
