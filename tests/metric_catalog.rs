//! Metric-catalog drift check: every statically named metric the crates
//! record must be documented in `docs/OBSERVABILITY.md`, and every metric
//! the catalog documents must still exist in the code. Without this the
//! catalog silently rots — a renamed counter keeps its stale doc row and a
//! new span never gets one.
//!
//! Code side: scans `crates/*/src/**/*.rs` (and the facade `src/`) for
//! `tu_obs::{counter,gauge,histogram,traced}("name")` and
//! `tu_obs::span("name")` (→ `span.name.ns`) call sites, skipping
//! anything after a `#[cfg(test)]` marker. `tu-obs` itself registers its
//! own metrics (the `obs.*` family: HTTP plane, event log, flight
//! recorder) through `crate::{counter,gauge,histogram}(…)`, so it is
//! scanned with those patterns instead. The dynamically named
//! `cloud.{tier}.*` family built with `format!` in `tu-cloud`'s cost
//! model is caught by a dedicated pattern and expanded over both tiers.
//!
//! Docs side: the first table cell of each catalog row; `<tier>` expands
//! to `block`/`object`, and dotless tokens (the `hits` / `misses` /
//! `evictions` shorthand) inherit the first token's prefix.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

const TIERS: [&str; 2] = ["block", "object"];

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Adds `name` (expanding a `{tier}` placeholder) to the set.
fn add_name(set: &mut BTreeSet<String>, name: &str) {
    if name.contains("{tier}") {
        for tier in TIERS {
            set.insert(name.replace("{tier}", tier));
        }
    } else {
        set.insert(name.to_string());
    }
}

/// Every metric name recorded by non-test code in the workspace.
fn code_names(root: &Path) -> BTreeSet<String> {
    let mut files = Vec::new();
    let mut obs_files = Vec::new();
    for entry in std::fs::read_dir(root.join("crates")).unwrap() {
        let path = entry.unwrap().path();
        if !path.is_dir() || !path.join("src").is_dir() {
            continue;
        }
        if path.ends_with("tu-obs") {
            rs_files(&path.join("src"), &mut obs_files);
        } else {
            rs_files(&path.join("src"), &mut files);
        }
    }
    rs_files(&root.join("src"), &mut files);
    assert!(files.len() > 10, "workspace scan looks broken: {files:?}");
    assert!(!obs_files.is_empty(), "tu-obs scan looks broken");

    // (prefix to search for, true if the extracted name is a span).
    let patterns: [(&str, bool); 6] = [
        ("tu_obs::counter(\"", false),
        ("tu_obs::gauge(\"", false),
        ("tu_obs::histogram(\"", false),
        ("tu_obs::traced(\"", false),
        ("tu_obs::traced(&format!(\"", false),
        ("tu_obs::span(\"", true),
    ];
    // tu-obs registers its own metrics via `crate::…` paths; doc examples
    // and the `tu_obs::…` form in its rustdoc use throwaway names, so only
    // the crate-internal form counts there.
    let obs_patterns: [(&str, bool); 3] = [
        ("crate::counter(\"", false),
        ("crate::gauge(\"", false),
        ("crate::histogram(\"", false),
    ];
    let mut names = BTreeSet::new();
    let scans = files
        .iter()
        .map(|f| (f, &patterns[..]))
        .chain(obs_files.iter().map(|f| (f, &obs_patterns[..])));
    for (file, patterns) in scans {
        let content = std::fs::read_to_string(file).unwrap();
        // Unit-test modules sit at the bottom of each file; their metric
        // names are throwaway and must not force catalog entries.
        let content = content
            .split("#[cfg(test)]")
            .next()
            .unwrap_or(&content)
            .to_string();
        for &(pattern, is_span) in patterns {
            for (pos, _) in content.match_indices(pattern) {
                let rest = &content[pos + pattern.len()..];
                let name = rest.split('"').next().unwrap();
                assert!(
                    !name.is_empty() && !name.contains('\n'),
                    "malformed metric name at {}: {name:?}",
                    file.display()
                );
                if is_span {
                    add_name(&mut names, &format!("span.{name}.ns"));
                } else {
                    add_name(&mut names, name);
                }
            }
        }
    }
    names
}

/// Every metric name documented in the OBSERVABILITY.md catalog tables.
/// Only the "## Metric catalog" section counts — the doc's other tables
/// (HTTP endpoints, health checks) catalogue different things.
fn doc_names(root: &Path) -> BTreeSet<String> {
    let doc = std::fs::read_to_string(root.join("docs/OBSERVABILITY.md")).unwrap();
    let mut names = BTreeSet::new();
    let mut in_catalog = false;
    for line in doc.lines() {
        let line = line.trim();
        if let Some(heading) = line.strip_prefix("## ") {
            in_catalog = heading == "Metric catalog";
            continue;
        }
        if !in_catalog || !line.starts_with('|') {
            continue;
        }
        let Some(cell) = line.split('|').nth(1) else {
            continue;
        };
        // Backticked tokens of the first cell, e.g.
        // "`lsm.cache.hits` / `misses` / `evictions`".
        let tokens: Vec<&str> = cell
            .split('`')
            .skip(1)
            .step_by(2)
            .filter(|t| !t.is_empty())
            .collect();
        let Some(first) = tokens.first() else {
            continue; // header or separator row
        };
        if first.starts_with('-') || *first == "metric" {
            continue;
        }
        let prefix = first.rsplit_once('.').map(|(p, _)| p).unwrap_or(first);
        for token in &tokens {
            let full = if token.contains('.') {
                (*token).to_string()
            } else {
                format!("{prefix}.{token}")
            };
            add_name(&mut names, &full.replace("<tier>", "{tier}"));
        }
    }
    names
}

#[test]
fn catalog_matches_recorded_metrics() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let code = code_names(root);
    let docs = doc_names(root);

    // Sanity: both scans must keep finding the well-known anchors, so a
    // broken regex-free parser cannot pass vacuously.
    for anchor in [
        "cloud.block.get_requests",
        "core.ingest.samples",
        "span.lsm.flush.ns",
        "span.core.query.ns",
        "obs.http.requests",
        "obs.flight.dropped_events",
        // The introspection plane: heat coverage, ledger windows, the
        // capacity gauges the ledger prices, and the bloom read-path
        // counters behind /introspect/lsm.
        "heat.attributed.requests",
        "heat.unattributed.bytes",
        "ledger.windows",
        "cloud.block.used_bytes",
        "cloud.object.used_bytes",
        "lsm.bloom.checks",
        "lsm.bloom.negatives",
    ] {
        assert!(code.contains(anchor), "code scan lost {anchor}");
        assert!(docs.contains(anchor), "doc scan lost {anchor}");
    }

    let undocumented: Vec<&String> = code.difference(&docs).collect();
    let stale: Vec<&String> = docs.difference(&code).collect();
    assert!(
        undocumented.is_empty(),
        "metrics recorded in code but missing from docs/OBSERVABILITY.md: {undocumented:?}"
    );
    assert!(
        stale.is_empty(),
        "metrics documented in docs/OBSERVABILITY.md but recorded nowhere: {stale:?}"
    );
}

/// Every HTTP path the live plane can serve: the built-in match arms of
/// `tu-obs`'s server plus every `Endpoint::new("/…")` extra registered
/// anywhere in the workspace (test code excluded).
fn served_paths(root: &Path) -> BTreeSet<String> {
    let mut paths = BTreeSet::new();
    // Built-ins: `"/path" => {` match arms in the request dispatcher.
    let serve = std::fs::read_to_string(root.join("crates/tu-obs/src/serve.rs")).unwrap();
    let serve = serve.split("#[cfg(test)]").next().unwrap().to_string();
    for line in serve.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"/") {
            if let Some((path, tail)) = rest.split_once('"') {
                if tail.trim_start().starts_with("=>") {
                    paths.insert(format!("/{path}"));
                }
            }
        }
    }
    // Extras: Endpoint::new("…") / Endpoint::with_query("…")
    // registrations in any crate.
    let mut files = Vec::new();
    for entry in std::fs::read_dir(root.join("crates")).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() && path.join("src").is_dir() {
            rs_files(&path.join("src"), &mut files);
        }
    }
    rs_files(&root.join("src"), &mut files);
    for file in files {
        let content = std::fs::read_to_string(&file).unwrap();
        let content = content.split("#[cfg(test)]").next().unwrap().to_string();
        for pattern in ["Endpoint::new(\"", "Endpoint::with_query(\""] {
            for (pos, _) in content.match_indices(pattern) {
                let rest = &content[pos + pattern.len()..];
                let path = rest.split('"').next().unwrap();
                assert!(
                    path.starts_with('/'),
                    "endpoint path must be absolute in {}: {path:?}",
                    file.display()
                );
                paths.insert(path.to_string());
            }
        }
    }
    paths
}

/// Every path documented in the OBSERVABILITY.md "### Endpoints" table.
fn doc_paths(root: &Path) -> BTreeSet<String> {
    let doc = std::fs::read_to_string(root.join("docs/OBSERVABILITY.md")).unwrap();
    let mut paths = BTreeSet::new();
    let mut in_endpoints = false;
    for line in doc.lines() {
        let line = line.trim();
        if let Some(heading) = line.strip_prefix("### ") {
            in_endpoints = heading == "Endpoints";
            continue;
        }
        if line.starts_with("## ") {
            in_endpoints = false;
            continue;
        }
        if !in_endpoints || !line.starts_with('|') {
            continue;
        }
        let Some(cell) = line.split('|').nth(1) else {
            continue;
        };
        let Some(token) = cell.split('`').nth(1) else {
            continue;
        };
        if token.starts_with('/') {
            paths.insert(token.to_string());
        }
    }
    paths
}

#[test]
fn endpoint_catalog_matches_served_paths() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let served = served_paths(root);
    let docs = doc_paths(root);

    // Anchors so a broken scanner cannot pass vacuously.
    for anchor in [
        "/metrics",
        "/vitals",
        "/introspect/lsm",
        "/introspect/partitions",
        "/costs",
        // The self-monitoring plane (Endpoint::with_query extras).
        "/query_range",
        "/alerts",
    ] {
        assert!(served.contains(anchor), "code scan lost {anchor}");
        assert!(docs.contains(anchor), "doc scan lost {anchor}");
    }

    let undocumented: Vec<&String> = served.difference(&docs).collect();
    let stale: Vec<&String> = docs.difference(&served).collect();
    assert!(
        undocumented.is_empty(),
        "endpoints served but missing from the docs/OBSERVABILITY.md Endpoints table: {undocumented:?}"
    );
    assert!(
        stale.is_empty(),
        "endpoints documented but served nowhere: {stale:?}"
    );
}
