//! The storage introspection plane, end to end: partition heat vs. the
//! `cloud.<tier>.*` counters, the windowed cost ledger vs. the
//! cost-model totals, and the three introspection endpoints under load.
//!
//! The heat registry, the metric registry, and the `cloud.<tier>.*`
//! gauges are process-global, so every test here takes a file-local lock
//! and compares *deltas* — absolute values belong to whichever test ran
//! first.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use timeunion::engine::{Options, Selector, TimeUnion};
use timeunion::lsm::TreeOptions;
use timeunion::model::Labels;
use tu_cloud::cost::LatencyMode;
use tu_cloud::ledger::CostLedger;
use tu_cloud::pricing::{self, Tier};
use tu_cloud::StorageEnv;
use tu_common::clock::SimClock;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn opts() -> Options {
    Options {
        chunk_samples: 8,
        latency: LatencyMode::Off,
        tree: TreeOptions {
            memtable_bytes: 16 << 10,
            max_sstable_bytes: 16 << 10,
            ..TreeOptions::default()
        },
        ..Options::default()
    }
}

fn tier_delta(d: &tu_obs::MetricsSnapshot, tier: &str, suffix: &str) -> u64 {
    d.counter(&format!("cloud.{tier}.{suffix}")).unwrap_or(0)
}

/// The tentpole invariant: the heat registry's per-tier totals (partitions
/// plus the unattributed bucket) move in lockstep with the traced
/// `cloud.<tier>.*` counters, because both are charged by the same
/// `TierCounters` record call. Checked across ingest, flush, and a
/// profiled query at the given fan-out width.
fn heat_matches_cloud_counters(threads: usize) {
    let _g = lock();
    let dir = tempfile::tempdir().unwrap();
    let clock = SimClock::new(0);
    let mut o = opts();
    o.clock = Arc::new(clock.clone());
    let db = TimeUnion::open(dir.path(), o).unwrap();
    db.set_query_threads(threads);

    let snap0 = tu_obs::global().snapshot();
    let heat0 = tu_obs::heat::snapshot();

    let ids: Vec<_> = (0..4)
        .map(|s| {
            let labels =
                Labels::from_pairs([("metric", "heat_exact"), ("host", &format!("h{s}") as &str)]);
            db.put(&labels, 0, 0.0).unwrap()
        })
        .collect();
    // Samples span many partition lengths so several heat cells exist.
    for t in 1..1_500i64 {
        let id = ids[(t % 4) as usize];
        db.put_by_id(id, t * 60_000, t as f64).unwrap();
    }
    db.flush_all().unwrap();
    db.sync().unwrap();
    let (out, profile) = db
        .query_profiled(&[Selector::exact("metric", "heat_exact")], 0, i64::MAX / 4)
        .unwrap();
    assert_eq!(out.len(), 4);

    let delta = tu_obs::global().snapshot().since(&snap0);
    let heat1 = tu_obs::heat::snapshot();
    for tier in tu_obs::heat::HEAT_TIERS {
        let h0 = heat0.tier_totals(tier);
        let h1 = heat1.tier_totals(tier);
        for (field, got, want) in [
            (
                "get_requests",
                h1.get_requests - h0.get_requests,
                tier_delta(&delta, tier, "get_requests"),
            ),
            (
                "put_requests",
                h1.put_requests - h0.put_requests,
                tier_delta(&delta, tier, "put_requests"),
            ),
            (
                "delete_requests",
                h1.delete_requests - h0.delete_requests,
                tier_delta(&delta, tier, "delete_requests"),
            ),
            (
                "bytes_read",
                h1.bytes_read - h0.bytes_read,
                tier_delta(&delta, tier, "bytes_read"),
            ),
            (
                "bytes_written",
                h1.bytes_written - h0.bytes_written,
                tier_delta(&delta, tier, "bytes_written"),
            ),
            (
                "first_reads",
                h1.first_reads - h0.first_reads,
                tier_delta(&delta, tier, "first_reads"),
            ),
        ] {
            assert_eq!(
                got, want,
                "heat vs cloud.{tier}.{field} at {threads} threads"
            );
        }
    }
    // The workload definitely moved bytes, so the equality is not vacuous,
    // and some of it landed in actual partitions (not just the WAL bucket).
    let block = heat1.tier_totals("block");
    assert!(block.bytes_written > heat0.tier_totals("block").bytes_written);
    assert!(
        heat1.partitions.iter().any(|p| p.tiers[0].requests() > 0),
        "no partition-attributed heat at {threads} threads"
    );

    // The profiled query surfaced its own partition contributions: the
    // read came from freshly flushed, uncached SSTables (on whichever
    // tier compaction left them).
    assert!(
        profile.heat.iter().any(|h| h.requests > 0),
        "profile carried no heat lines: {profile}"
    );
    assert!(profile.to_string().contains("heat partition=["));
    assert!(profile.to_json().contains("\"heat\":[{"));
}

#[test]
fn heat_equals_cloud_deltas_single_thread() {
    heat_matches_cloud_counters(1);
}

#[test]
fn heat_equals_cloud_deltas_eight_threads() {
    heat_matches_cloud_counters(8);
}

/// Milliseconds in the 30-day month the GB-month price sheet assumes
/// (mirrors the ledger's internal proration constant).
const MONTH_MS: f64 = 30.0 * 24.0 * 3600.0 * 1000.0;

#[test]
fn ledger_totals_match_storage_stats_dollars() {
    let _g = lock();
    let dir = tempfile::tempdir().unwrap();
    let env = StorageEnv::open_unmetered(dir.path()).unwrap();
    let ledger = CostLedger::new(8);

    let blk0 = env.block.stats();
    let obj0 = env.object.stats();
    ledger.record(0, &tu_obs::global().snapshot());

    env.object.put("sst/a", &[1u8; 4096]).unwrap();
    env.object.get("sst/a").unwrap();
    env.block.write_file("wal/w", &[0u8; 512]).unwrap();
    ledger.record(60_000, &tu_obs::global().snapshot());
    let used_obj_w1 = env.object.used_bytes();
    let used_blk_w1 = env.block.used_bytes();

    env.object.put("sst/b", &[2u8; 2048]).unwrap();
    env.object.get_range("sst/a", 0, 1024).unwrap();
    env.object.delete("sst/a").unwrap();
    env.block.read_file("wal/w").unwrap();
    ledger.record(120_000, &tu_obs::global().snapshot());
    let used_obj_w2 = env.object.used_bytes();
    let used_blk_w2 = env.block.used_bytes();

    let blk = env.block.stats().since(&blk0);
    let obj = env.object.stats().since(&obj0);
    let totals = ledger.totals();

    // Integer traffic totals equal the per-store StorageStats deltas.
    assert_eq!(totals[0].tier, "block");
    assert_eq!(totals[0].get_requests, blk.get_requests);
    assert_eq!(totals[0].put_requests, blk.put_requests);
    assert_eq!(totals[0].bytes_read, blk.bytes_read);
    assert_eq!(totals[0].bytes_written, blk.bytes_written);
    assert_eq!(totals[1].tier, "object");
    assert_eq!(totals[1].get_requests, obj.get_requests);
    assert_eq!(totals[1].put_requests, obj.put_requests);
    assert_eq!(totals[1].delete_requests, obj.delete_requests);
    assert_eq!(totals[1].bytes_read, obj.bytes_read);
    assert_eq!(totals[1].bytes_written, obj.bytes_written);

    // Request-traffic $: Eq. 4/6 applied to those deltas. Block storage
    // bills no per-request cost (Eq. 3) — that asymmetry must survive.
    let expect_obj = pricing::request_cost_usd(Tier::Object, obj.get_requests, obj.put_requests);
    assert!((totals[1].request_usd - expect_obj).abs() < 1e-12);
    assert!(expect_obj > 0.0);
    assert_eq!(totals[0].request_usd, 0.0);

    // Capacity $: each window prorates the tier's end-of-window capacity
    // over its duration (Eq. 3/5).
    let expect_obj_store = (pricing::monthly_cost_usd(Tier::Object, used_obj_w1)
        + pricing::monthly_cost_usd(Tier::Object, used_obj_w2))
        * 60_000.0
        / MONTH_MS;
    assert!((totals[1].storage_usd - expect_obj_store).abs() < 1e-12);
    let expect_blk_store = (pricing::monthly_cost_usd(Tier::Block, used_blk_w1)
        + pricing::monthly_cost_usd(Tier::Block, used_blk_w2))
        * 60_000.0
        / MONTH_MS;
    assert!((totals[0].storage_usd - expect_blk_store).abs() < 1e-12);

    // The JSON rendering carries the same totals.
    let json = ledger.to_json();
    assert!(json.contains(&format!("\"get_requests\":{}", obj.get_requests)));
    assert!(json.contains("\"totals\":{"));
}

// --- endpoint plumbing (mirrors tests/http_plane.rs) ------------------------

fn open_serving(dir: &std::path::Path, mut o: Options) -> (Arc<TimeUnion>, SocketAddr) {
    o.serve_addr = Some("127.0.0.1:0".to_string());
    let db = Arc::new(TimeUnion::open(dir, o).unwrap());
    let addr = db
        .serve_if_configured()
        .unwrap()
        .expect("serve_addr was configured");
    (db, addr)
}

fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    String::from_utf8_lossy(&response).into_owned()
}

fn status_of(response: &str) -> u32 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"))
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

/// Structural JSON well-formedness without a parser dependency.
fn assert_json_shaped(body: &str, path: &str) {
    assert!(body.starts_with('{'), "{path}: {body:?}");
    assert!(body.trim_end().ends_with('}'), "{path}: {body:?}");
    assert_eq!(
        body.matches('{').count(),
        body.matches('}').count(),
        "{path}: unbalanced braces"
    );
    assert_eq!(
        body.matches('[').count(),
        body.matches(']').count(),
        "{path}: unbalanced brackets"
    );
    assert_eq!(
        body.matches('"').count() % 2,
        0,
        "{path}: unbalanced quotes"
    );
}

/// Every JSON object key in `body` (a quoted token directly followed by a
/// colon). The key *vocabulary* is the schema fingerprint the endpoints
/// promise to keep stable.
fn key_set(body: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut rest = body;
    while let Some(i) = rest.find('"') {
        let after = &rest[i + 1..];
        let Some(j) = after.find('"') else { break };
        let token = &after[..j];
        let tail = &after[j + 1..];
        if tail.starts_with(':') {
            out.insert(token.to_string());
        }
        rest = tail;
    }
    out
}

#[test]
fn introspection_endpoints_serve_stable_json_under_ingest() {
    let _g = lock();
    let dir = tempfile::tempdir().unwrap();
    let (db, addr) = open_serving(dir.path(), opts());

    // Seed enough data that partitions and tables exist before the first
    // scrape (so both scrapes see the full key vocabulary).
    let labels = Labels::from_pairs([("metric", "introspect_load"), ("host", "h1")]);
    let id = db.put(&labels, 0, 0.0).unwrap();
    for t in 1..1_000i64 {
        db.put_by_id(id, t * 60_000, t as f64).unwrap();
    }
    db.flush_all().unwrap();
    db.sync().unwrap();
    db.query(
        &[Selector::exact("metric", "introspect_load")],
        0,
        i64::MAX / 4,
    )
    .unwrap();
    // Two manual monitor samples close at least one ledger window.
    let monitor = db.monitor().expect("serving engine has a monitor");
    monitor.sample();
    monitor.sample();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let ingester = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut t = 1_000i64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                db.put_by_id(id, t * 60_000, t as f64).unwrap();
                t += 1;
            }
        })
    };

    for path in ["/introspect/lsm", "/introspect/partitions", "/costs"] {
        let r1 = get(addr, path);
        assert_eq!(status_of(&r1), 200, "{path}: {r1:?}");
        assert!(r1.contains("application/json"), "{path}: {r1:?}");
        let b1 = body_of(&r1).to_string();
        assert_json_shaped(&b1, path);
        let r2 = get(addr, path);
        assert_eq!(status_of(&r2), 200, "{path}: {r2:?}");
        let b2 = body_of(&r2).to_string();
        assert_json_shaped(&b2, path);
        assert_eq!(
            key_set(&b1),
            key_set(&b2),
            "{path}: key vocabulary drifted between scrapes"
        );
    }

    // Spot-check each endpoint's content.
    let lsm = body_of(&get(addr, "/introspect/lsm")).to_string();
    for needle in ["\"r1_ms\":", "\"levels\":[", "\"cache\":{", "\"bloom\":{"] {
        assert!(
            lsm.contains(needle),
            "/introspect/lsm missing {needle}: {lsm}"
        );
    }
    let parts = body_of(&get(addr, "/introspect/partitions")).to_string();
    for needle in [
        "\"partitions\":[",
        "\"heat\":{",
        "\"class\":\"",
        "\"unattributed\":{",
    ] {
        assert!(
            parts.contains(needle),
            "/introspect/partitions missing {needle}: {parts}"
        );
    }
    let costs = body_of(&get(addr, "/costs")).to_string();
    for needle in [
        "\"windows\":[",
        "\"totals\":{",
        "\"request_usd\":",
        "\"storage_usd\":",
    ] {
        assert!(costs.contains(needle), "/costs missing {needle}: {costs}");
    }
    // The manual samples above closed at least one window.
    assert!(costs.contains("\"start_ms\":"), "no window closed: {costs}");

    // The live plane's own index advertises the new endpoints.
    let index = get(addr, "/");
    for path in ["/introspect/lsm", "/introspect/partitions", "/costs"] {
        assert!(body_of(&index).contains(path), "index missing {path}");
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    ingester.join().unwrap();
    db.stop_serving();
}
