//! Tier-1 gate: the workspace must pass `tu-lint` with zero unallowed
//! findings, so `cargo test` enforces the same discipline rules as
//! `cargo run -p tu-lint` and the CI lint job.
//!
//! The rules and their rationale are documented in
//! `docs/STATIC_ANALYSIS.md`; suppress a finding with a preceding
//! `// tu-lint: allow(<rule>): <reason>` comment.

#[test]
fn workspace_has_zero_unallowed_lint_findings() {
    let root = tu_lint::workspace_root();
    let report = tu_lint::lint_workspace(&root).expect("workspace sources readable");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); did the walker break?",
        report.files_scanned
    );
    let findings: Vec<String> = report
        .unallowed()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        findings.is_empty(),
        "tu-lint found {} unallowed finding(s):\n{}\n\
         Fix the violation or document an invariant with \
         `// tu-lint: allow(<rule>): <reason>` (see docs/STATIC_ANALYSIS.md).",
        findings.len(),
        findings.join("\n")
    );
}

#[test]
fn stale_allow_directives_are_reported() {
    // Unused allows don't fail the build, but surface them in test output
    // so they get cleaned up rather than rotting.
    let report = tu_lint::lint_workspace(&tu_lint::workspace_root()).expect("workspace readable");
    for a in &report.unused_allows {
        eprintln!(
            "note: unused `tu-lint: allow({})` at {}:{}",
            a.rule, a.file, a.line
        );
    }
    // The tree currently carries no allow directives at all; if one is
    // added with good reason this bound just moves.
    assert!(
        report.unused_allows.len() <= 5,
        "too many stale allow directives: {:?}",
        report.unused_allows
    );
}
