//! End-to-end observability: a small ingest + query run must leave the
//! global `tu-obs` registry with non-zero counters that agree with the
//! cloud layer's own cost-model accounting ([`StorageStats`]).
//!
//! This file holds a single test on purpose: integration-test files run in
//! their own process, so nothing else touches the global registry and the
//! equality assertions below can be exact.
//!
//! [`StorageStats`]: timeunion::cloud::StorageEnv

use timeunion::engine::{Options, Selector, TimeUnion};
use timeunion::lsm::TreeOptions;
use timeunion::model::Labels;
use tu_cloud::cost::LatencyMode;

#[test]
fn ingest_and_query_populate_consistent_counters() {
    let dir = tempfile::tempdir().unwrap();
    let db = TimeUnion::open(
        dir.path(),
        Options {
            chunk_samples: 8,
            latency: LatencyMode::Virtual,
            tree: TreeOptions {
                memtable_bytes: 16 << 10,
                max_sstable_bytes: 16 << 10,
                ..TreeOptions::default()
            },
            ..Options::default()
        },
    )
    .unwrap();

    let mut expected_samples = 0u64;
    let mut ids = Vec::new();
    for s in 0..4 {
        let labels = Labels::from_pairs([("metric", "cpu"), ("host", format!("h{s}").as_str())]);
        ids.push(db.put(&labels, 0, s as f64).unwrap());
        expected_samples += 1;
    }
    for step in 1..512i64 {
        for (s, id) in ids.iter().enumerate() {
            db.put_by_id(*id, step * 1_000, (s as f64) + (step as f64) * 0.01)
                .unwrap();
            expected_samples += 1;
        }
    }
    db.flush_all().unwrap();
    db.sync().unwrap();

    let results = db
        .query(&[Selector::exact("metric", "cpu")], 0, 512_000)
        .unwrap();
    assert_eq!(results.len(), 4);

    let snap = timeunion::obs::global().snapshot();

    // Engine-level counters.
    assert_eq!(snap.counter("core.ingest.samples"), Some(expected_samples));
    assert_eq!(snap.counter("core.query.requests"), Some(1));
    let q = snap.histogram("span.core.query.ns").expect("query span");
    assert_eq!(q.count, 1);

    // LSM activity: the tiny memtable forces flushes, and every sample was
    // WAL-logged before being applied (checkpoint records add a few more).
    let wal_records = snap.counter("lsm.wal.append_records").unwrap_or(0);
    assert!(
        wal_records >= expected_samples,
        "{wal_records} WAL records < {expected_samples} samples"
    );
    let flushes = snap.histogram("span.lsm.flush.ns").expect("flush span");
    assert!(flushes.count > 0, "no memtable flushes recorded");
    assert_eq!(flushes.count, db.tree_stats().flushes);

    // Cloud counters must be non-zero and agree exactly with the cost
    // model's per-store accounting (the acceptance criterion).
    let blk = db.storage().block.stats();
    let obj = db.storage().object.stats();
    assert!(blk.put_requests > 0 && blk.bytes_written > 0);
    assert!(
        obj.put_requests > 0,
        "flush_all must upload to the slow tier"
    );
    for (name, want) in [
        ("cloud.block.get_requests", blk.get_requests),
        ("cloud.block.put_requests", blk.put_requests),
        ("cloud.block.bytes_read", blk.bytes_read),
        ("cloud.block.bytes_written", blk.bytes_written),
        ("cloud.object.get_requests", obj.get_requests),
        ("cloud.object.put_requests", obj.put_requests),
        ("cloud.object.bytes_read", obj.bytes_read),
        ("cloud.object.bytes_written", obj.bytes_written),
    ] {
        assert_eq!(snap.counter(name), Some(want), "mismatch for {name}");
    }

    // The snapshot serializes without losing the counters we just checked.
    let json = snap.to_json();
    assert!(json.contains("\"core.ingest.samples\""));
    assert!(json.contains("\"cloud.object.put_requests\""));
    let shown = snap.to_string();
    assert!(shown.contains("core.ingest.samples"));
}
