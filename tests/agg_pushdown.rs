//! Aggregation-pushdown equivalence: for every [`AggKind`] and any thread
//! count, `TimeUnion::query_aggregate` must be *bit-identical* to the
//! materialize-then-fold reference (`query` + `aggregate_step`). The
//! randomized workloads deliberately include out-of-order writes,
//! duplicate timestamps, NaN values, mid-stream flushes (so chunks land
//! in SSTables with stats footers), and chunks written by the pre-stats
//! legacy format.

use proptest::prelude::*;

use timeunion::engine::{aggregate_step, AggKind, Options, Selector, TimeUnion};
use timeunion::lsm::TreeOptions;
use timeunion::model::{Labels, Sample};
use tu_cloud::cost::LatencyMode;
use tu_compress::gorilla;

fn opts() -> Options {
    Options {
        chunk_samples: 8,
        latency: LatencyMode::Virtual,
        tree: TreeOptions {
            memtable_bytes: 16 << 10,
            max_sstable_bytes: 16 << 10,
            ..TreeOptions::default()
        },
        ..Options::default()
    }
}

/// The reference the pushdown is pinned against: materialize every sample
/// via `query`, then fold with `aggregate_step`. Series whose windows are
/// all empty are dropped, mirroring the engine.
fn reference_aggregate(
    db: &TimeUnion,
    selectors: &[Selector],
    kind: AggKind,
    start: i64,
    end: i64,
    step_ms: i64,
) -> Vec<(Labels, Vec<Sample>)> {
    db.query(selectors, start, end)
        .unwrap()
        .into_iter()
        .filter_map(|s| {
            let agg = aggregate_step(kind, &s.samples, start, end, step_ms);
            (!agg.is_empty()).then_some((s.labels, agg))
        })
        .collect()
}

/// Asserts pushdown == reference with f64 bit equality, across 1/2/8
/// query threads.
fn assert_pushdown_matches(
    db: &TimeUnion,
    selectors: &[Selector],
    start: i64,
    end: i64,
    step: i64,
) {
    for kind in AggKind::ALL {
        let expect = reference_aggregate(db, selectors, kind, start, end, step);
        for threads in [1usize, 2, 8] {
            db.set_query_threads(threads);
            let got = db
                .query_aggregate(selectors, kind, start, end, step)
                .unwrap();
            assert_eq!(
                got.len(),
                expect.len(),
                "{kind:?} @ {threads} threads: series count"
            );
            for (g, (labels, samples)) in got.iter().zip(&expect) {
                assert_eq!(&g.labels, labels, "{kind:?} @ {threads} threads: labels");
                assert_eq!(
                    g.samples.len(),
                    samples.len(),
                    "{kind:?} @ {threads} threads: window count for {labels:?}"
                );
                for (a, b) in g.samples.iter().zip(samples) {
                    assert_eq!(a.t, b.t, "{kind:?} @ {threads} threads: window ts");
                    assert_eq!(
                        a.v.to_bits(),
                        b.v.to_bits(),
                        "{kind:?} @ {threads} threads: value bits at t={} ({} vs {})",
                        a.t,
                        a.v,
                        b.v
                    );
                }
            }
        }
    }
}

/// One randomized write against the engine.
#[derive(Debug, Clone)]
enum Op {
    /// Insert into series `s` at timestamp `t`; `nan` poisons the value.
    Put {
        series: u8,
        t: i64,
        v: u32,
        nan: bool,
    },
    /// Force heads + tree down to SSTables (stats-framed chunks).
    FlushAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        24 => (0u8..5, 0i64..40 * 60_000, any::<u32>())
            .prop_map(|(series, t, v)| Op::Put { series, t, v, nan: v % 13 == 0 }),
        1 => Just(Op::FlushAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Pushdown == materialize-then-fold for every `AggKind` over
    /// out-of-order, NaN-containing, duplicate-timestamp workloads, at
    /// 1/2/8 threads, bitwise.
    #[test]
    fn pushdown_matches_reference_fold(
        ops in proptest::collection::vec(op_strategy(), 1..220),
        step_min in 1i64..12,
    ) {
        let dir = tempfile::tempdir().unwrap();
        let db = TimeUnion::open(dir.path().join("db"), opts()).unwrap();
        let mut ids: std::collections::BTreeMap<u8, u64> = std::collections::BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put { series, t, v, nan } => {
                    let vf = if *nan { f64::NAN } else { *v as f64 };
                    match ids.get(series) {
                        Some(id) => db.put_by_id(*id, *t, vf).unwrap(),
                        None => {
                            let l = Labels::from_pairs([
                                ("metric", "agg"),
                                ("series", &format!("s{series}")),
                            ]);
                            ids.insert(*series, db.put(&l, *t, vf).unwrap());
                        }
                    }
                }
                Op::FlushAll => db.flush_all().unwrap(),
            }
        }
        let sel = vec![Selector::exact("metric", "agg")];
        let step = step_min * 60_000;
        assert_pushdown_matches(&db, &sel, 0, 40 * 60_000, step);
        // A mid-stream range start exercises the partially-covered-chunk path.
        assert_pushdown_matches(&db, &sel, 7 * 60_000, 33 * 60_000, step);
    }
}

/// Mixed-version store: legacy pre-stats chunks (no footer) planted next
/// to stats-framed chunks and head samples must aggregate bit-identically
/// to the reference at every thread count.
#[test]
fn mixed_format_store_aggregates_identically() {
    let dir = tempfile::tempdir().unwrap();
    let db = TimeUnion::open(dir.path().join("db"), opts()).unwrap();
    let labels = Labels::from_pairs([("metric", "mixed"), ("host", "h0")]);
    let id = db.put(&labels, 200_000, 1.0).unwrap();

    // Plant two legacy-format chunks (written by the pre-stats version)
    // directly into the tree, below everything the engine writes itself.
    for (base, bias) in [(0i64, 0.0f64), (64_000, 100.0)] {
        let samples: Vec<Sample> = (0..8)
            .map(|i| {
                let v = if i == 3 { f64::NAN } else { bias + i as f64 };
                Sample::new(base + i * 8_000, v)
            })
            .collect();
        let legacy = gorilla::compress_chunk(&samples).unwrap();
        assert!(
            gorilla::ChunkDecoder::new(&legacy)
                .unwrap()
                .stats()
                .is_none(),
            "legacy bytes must carry no stats footer"
        );
        db.debug_put_chunk(id, base, base + 7 * 8_000, legacy)
            .unwrap();
    }

    // Fresh engine writes on top: sealed (stats-framed) chunks + head.
    for i in 0..24i64 {
        db.put_by_id(id, 200_000 + i * 8_000, (i * i) as f64)
            .unwrap();
    }
    db.flush_all().unwrap();
    for i in 0..5i64 {
        db.put_by_id(id, 400_000 + i * 8_000, -(i as f64)).unwrap();
    }

    let sel = vec![Selector::exact("metric", "mixed")];
    assert_pushdown_matches(&db, &sel, 0, 500_000, 60_000);
    assert_pushdown_matches(&db, &sel, 30_000, 450_000, 32_000);

    // Sanity: the legacy chunks are actually readable in plain queries.
    let all = db.query(&sel, 0, 500_000).unwrap();
    assert_eq!(all.len(), 1);
    assert!(all[0].samples.iter().any(|s| s.t < 200_000));
}

/// Group (NULL-XOR) aggregation equivalence with per-member NULL gaps,
/// across flush boundaries and thread counts.
#[test]
fn group_pushdown_matches_reference_fold() {
    let dir = tempfile::tempdir().unwrap();
    let db = TimeUnion::open(dir.path().join("db"), opts()).unwrap();
    let gtags = Labels::from_pairs([("job", "node"), ("instance", "i0")]);
    let members: Vec<Labels> = (0..4)
        .map(|m| Labels::from_pairs([("cpu", format!("c{m}").as_str())]))
        .collect();
    let (gid, refs) = db
        .put_group(&gtags, &members, 0, &[0.0, 1.0, 2.0, 3.0])
        .unwrap();

    for round in 1..60i64 {
        let values: Vec<f64> = (0..4).map(|m| (round * 10 + m) as f64).collect();
        if round % 7 == 0 {
            // Some rounds miss a member (NULL column entries).
            db.put_group_fast(gid, &refs[..3], round * 5_000, &values[..3])
                .unwrap();
        } else {
            db.put_group_fast(gid, &refs, round * 5_000, &values)
                .unwrap();
        }
        if round == 30 {
            db.flush_all().unwrap();
        }
    }

    let all = vec![Selector::exact("job", "node")];
    assert_pushdown_matches(&db, &all, 0, 300_000, 40_000);
    let one = vec![Selector::exact("job", "node"), Selector::exact("cpu", "c2")];
    assert_pushdown_matches(&db, &one, 10_000, 290_000, 25_000);
}
