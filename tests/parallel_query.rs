//! Parallel query determinism: for any thread count, `TimeUnion::query`
//! must return exactly the same `QueryResult` — same series, same order,
//! same samples — as the sequential path. The workload is randomized but
//! seeded: individual series, grouped series, out-of-order samples, and a
//! mid-stream flush so results span SSTables, patches, and head chunks.

use rand::{Rng, SeedableRng};
use timeunion::engine::{Options, Selector, TimeUnion};
use timeunion::lsm::TreeOptions;
use timeunion::model::Labels;
use tu_cloud::cost::LatencyMode;

const MIN: i64 = 60_000;

fn opts() -> Options {
    Options {
        chunk_samples: 8,
        latency: LatencyMode::Virtual,
        tree: TreeOptions {
            memtable_bytes: 16 << 10,
            max_sstable_bytes: 16 << 10,
            ..TreeOptions::default()
        },
        ..Options::default()
    }
}

#[test]
fn parallel_query_matches_sequential_exactly() {
    let dir = tempfile::tempdir().unwrap();
    let db = TimeUnion::open(dir.path(), opts()).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD15EA5E);

    // 24 individual series over 4 metrics.
    let mut ids = Vec::new();
    for s in 0..24 {
        let labels = Labels::from_pairs([
            ("metric", format!("m{}", s % 4).as_str()),
            ("host", format!("h{s}").as_str()),
        ]);
        ids.push(db.put(&labels, 0, s as f64).unwrap());
    }
    // 3 groups of 5 members each.
    let mut groups = Vec::new();
    for g in 0..3 {
        let gtags = Labels::from_pairs([("job", "node"), ("instance", format!("i{g}").as_str())]);
        let members: Vec<Labels> = (0..5)
            .map(|m| Labels::from_pairs([("cpu", format!("c{m}").as_str())]))
            .collect();
        let values: Vec<f64> = (0..5).map(|m| m as f64).collect();
        let (gid, refs) = db.put_group(&gtags, &members, 0, &values).unwrap();
        groups.push((gid, refs));
    }

    let ingest = |db: &TimeUnion, rng: &mut rand::rngs::StdRng, rounds: usize| {
        for _ in 0..rounds {
            // Mostly in-order timestamps with a deliberate out-of-order tail.
            let base: i64 = rng.gen_range(1..600i64) * MIN;
            for &id in &ids {
                let jitter: i64 = rng.gen_range(-5 * MIN..5 * MIN);
                db.put_by_id(id, (base + jitter).max(1), rng.gen_range(0.0..100.0))
                    .unwrap();
            }
            for (gid, refs) in &groups {
                let values: Vec<f64> = refs.iter().map(|_| rng.gen_range(0.0..1.0)).collect();
                db.put_group_fast(*gid, refs, base, &values).unwrap();
            }
        }
    };

    ingest(&db, &mut rng, 40);
    db.flush_all().unwrap(); // everything so far lives in SSTables
    ingest(&db, &mut rng, 20); // plus fresh head-chunk samples on top

    let cases: Vec<(Vec<Selector>, i64, i64)> = vec![
        (vec![Selector::exact("metric", "m0")], 0, 600 * MIN),
        (vec![Selector::exact("metric", "m1")], 50 * MIN, 300 * MIN),
        (vec![Selector::exact("host", "h7")], 0, i64::MAX / 2),
        (vec![Selector::exact("job", "node")], 0, 600 * MIN),
        (
            vec![Selector::exact("job", "node"), Selector::exact("cpu", "c2")],
            10 * MIN,
            400 * MIN,
        ),
        (vec![], 0, 600 * MIN),
    ];

    db.set_query_threads(1);
    let baseline: Vec<_> = cases
        .iter()
        .map(|(sel, start, end)| db.query(sel, *start, *end).unwrap())
        .collect();
    assert!(
        baseline.iter().any(|r| r.len() > 1),
        "workload must produce multi-series results"
    );

    for threads in [2, 8] {
        db.set_query_threads(threads);
        assert_eq!(db.query_threads(), threads);
        for ((sel, start, end), expect) in cases.iter().zip(&baseline) {
            let got = db.query(sel, *start, *end).unwrap();
            assert_eq!(
                &got, expect,
                "thread count {threads} changed the result of {sel:?}"
            );
        }
    }
}
