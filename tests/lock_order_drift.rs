//! Concurrency-discipline drift check (same pattern as
//! `tests/metric_catalog.rs`): the three artifacts that encode the lock
//! hierarchy — the machine-read manifest `docs/LOCK_ORDER.md`, the static
//! pass in `tu-lint`, and the runtime witness classes in
//! `tu_common::lockdep` — must agree, and the rule documentation in
//! `docs/STATIC_ANALYSIS.md` must cover every registered rule. Without
//! this the manifest silently rots: a renamed field keeps its stale bind
//! row, a new witness class never gets a rank, and a new rule ships
//! undocumented.

use std::collections::BTreeSet;
use std::path::Path;

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// Every registered lint rule has its own `### `rule`` section in
/// `docs/STATIC_ANALYSIS.md`, so `--help` and the docs cannot diverge.
#[test]
fn every_rule_is_documented() {
    let doc = std::fs::read_to_string(root().join("docs/STATIC_ANALYSIS.md")).unwrap();
    let sections: BTreeSet<&str> = doc
        .lines()
        .filter_map(|l| l.strip_prefix("### `"))
        .filter_map(|l| l.strip_suffix('`'))
        .collect();
    assert!(
        sections.len() >= 5,
        "suspiciously few rule sections parsed from docs/STATIC_ANALYSIS.md: {sections:?}"
    );
    let undocumented: Vec<&&str> = tu_lint::ALL_RULES
        .iter()
        .filter(|r| !sections.contains(**r))
        .collect();
    assert!(
        undocumented.is_empty(),
        "rules registered in tu_lint::ALL_RULES but missing a \
         `### `<rule>`` section in docs/STATIC_ANALYSIS.md: {undocumented:?}"
    );
    let stale: Vec<&&str> = sections
        .iter()
        .filter(|s| !tu_lint::ALL_RULES.contains(*s))
        .collect();
    assert!(
        stale.is_empty(),
        "docs/STATIC_ANALYSIS.md documents rules that are not registered: {stale:?}"
    );
}

/// The checked-in manifest parses, and the copy embedded in the `tu-lint`
/// binary at compile time is the same document (a stale build would
/// enforce yesterday's hierarchy).
#[test]
fn manifest_parses_and_matches_embedded_copy() {
    let text = std::fs::read_to_string(root().join("docs/LOCK_ORDER.md")).unwrap();
    let parsed = tu_lint::Manifest::parse(&text).expect("docs/LOCK_ORDER.md must parse");
    let embedded = tu_lint::locks::embedded_manifest();
    assert_eq!(
        parsed.classes.len(),
        embedded.classes.len(),
        "embedded manifest is stale: rebuild tu-lint"
    );
    for (a, b) in parsed.classes.iter().zip(embedded.classes.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.rank, b.rank, "rank drift for {}", a.name);
    }
}

/// Every runtime witness class (`tu_common::lockdep::all()`) appears in
/// the manifest under the same name, rank, and `multi` flag. The witness
/// and the static pass must enforce one hierarchy, not two.
#[test]
fn witness_classes_match_the_manifest() {
    let text = std::fs::read_to_string(root().join("docs/LOCK_ORDER.md")).unwrap();
    let manifest = tu_lint::Manifest::parse(&text).unwrap();
    assert!(
        tu_common::lockdep::all().len() >= 30,
        "suspiciously few witness classes"
    );
    for class in tu_common::lockdep::all() {
        let Some(def) = manifest.classes.iter().find(|c| c.name == class.name) else {
            panic!(
                "runtime witness class `{}` (rank {}) has no row in docs/LOCK_ORDER.md",
                class.name, class.rank
            );
        };
        assert_eq!(
            def.rank, class.rank,
            "rank mismatch for `{}`: manifest says {}, lockdep.rs says {}",
            class.name, def.rank, class.rank
        );
        assert_eq!(
            def.multi, class.multi,
            "multi-flag mismatch for `{}`",
            class.name
        );
    }
}

/// Every lock class named in the manifest exists in the codebase: either
/// it is a runtime witness class, or each of its static binds points at a
/// real file that actually mentions the bound identifier. This is what
/// catches a field rename that leaves a dead bind row behind.
#[test]
fn every_manifest_class_exists_in_the_codebase() {
    let text = std::fs::read_to_string(root().join("docs/LOCK_ORDER.md")).unwrap();
    let manifest = tu_lint::Manifest::parse(&text).unwrap();
    let witness: BTreeSet<&str> = tu_common::lockdep::all().iter().map(|c| c.name).collect();

    for class in &manifest.classes {
        let witnessed = witness.contains(class.name.as_str());
        assert!(
            witnessed || !class.binds.is_empty(),
            "class `{}` has no binds and no runtime witness class: nothing enforces it",
            class.name
        );
        for bind in &class.binds {
            assert!(
                !bind.path.ends_with('/'),
                "prefix binds are checked per-file; `{}` uses one for `{}` — extend this \
                 test if a prefix bind is ever needed",
                class.name,
                bind.path
            );
            let path = root().join(&bind.path);
            let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "class `{}` binds {}::{} but the file is unreadable: {e}",
                    class.name, bind.path, bind.ident
                )
            });
            assert!(
                src.contains(&bind.ident),
                "class `{}` binds identifier `{}` in {}, but the file never mentions it \
                 (field renamed? update docs/LOCK_ORDER.md)",
                class.name,
                bind.ident,
                bind.path
            );
        }
    }
}

/// The static pass actually resolves classes: the lock graph over the
/// workspace is non-empty and every edge ascends in rank, re-deriving the
/// acyclicity argument from the shipped sources on every test run.
#[test]
fn workspace_lock_graph_is_nonempty_and_ascending() {
    let text = std::fs::read_to_string(root().join("docs/LOCK_ORDER.md")).unwrap();
    let manifest = tu_lint::Manifest::parse(&text).unwrap();
    let rank = |name: &str| {
        manifest
            .classes
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.rank)
            .unwrap_or_else(|| panic!("edge names unknown class `{name}`"))
    };
    let (_report, edges) =
        tu_lint::lint_workspace_with_edges(&tu_lint::workspace_root()).expect("workspace readable");
    assert!(
        edges.len() >= 10,
        "suspiciously sparse lock graph ({} edges); did classification break?",
        edges.len()
    );
    for e in &edges {
        assert!(
            rank(&e.from) < rank(&e.to) || (e.from == e.to && rank(&e.from) == rank(&e.to)),
            "descending lock-graph edge {} -> {} at {}:{}",
            e.from,
            e.to,
            e.file,
            e.line
        );
    }
}
