//! Cross-engine agreement: the same in-order workload through TimeUnion,
//! TU-LDB, tsdb, and tsdb-LDB must yield identical query results — the
//! engines differ in cost, never in answers.

use timeunion::baselines::{Tsdb, TsdbLdb, TsdbOptions, TuLdb};
use timeunion::cloud::StorageEnv;
use timeunion::engine::{Options, Selector, TimeUnion};
use timeunion::lsm::TreeOptions;
use timeunion::tsbs::{DevOpsGenerator, DevOpsOptions, QueryPattern};
use tu_cloud::cost::LatencyMode;
use tu_common::{Labels, Sample};
use tu_lsm::leveled::LeveledOptions;

fn generator() -> DevOpsGenerator {
    DevOpsGenerator::new(DevOpsOptions {
        hosts: 4,
        start_ms: 0,
        interval_ms: 60_000,
        duration_ms: 3 * 3_600_000,
        seed: 5,
    })
}

fn normalize(mut rows: Vec<(Labels, Vec<Sample>)>) -> Vec<(Vec<u8>, Vec<Sample>)> {
    rows.sort_by(|a, b| a.0.to_bytes().cmp(&b.0.to_bytes()));
    rows.into_iter().map(|(l, s)| (l.to_bytes(), s)).collect()
}

#[test]
fn all_engines_return_identical_results() {
    let gen = generator();
    let dir = tempfile::tempdir().unwrap();

    // TimeUnion.
    let tu = TimeUnion::open(
        dir.path().join("tu"),
        Options {
            chunk_samples: 16,
            index_slots_per_segment: 1 << 14,
            tree: TreeOptions {
                memtable_bytes: 128 << 10,
                ..TreeOptions::default()
            },
            ..Options::default()
        },
    )
    .unwrap();
    // TU-LDB.
    let tu_ldb = TuLdb::open(
        dir.path().join("tuldb-mem"),
        StorageEnv::open(dir.path().join("tuldb-store"), LatencyMode::Off).unwrap(),
        16,
        16 << 20,
        LeveledOptions {
            memtable_bytes: 128 << 10,
            ..LeveledOptions::default()
        },
    )
    .unwrap();
    // tsdb (+ cloud storage).
    let tsdb = Tsdb::open(
        StorageEnv::open(dir.path().join("tsdb-store"), LatencyMode::Off).unwrap(),
        TsdbOptions {
            chunk_samples: 120,
            ..TsdbOptions::default()
        },
    )
    .unwrap();
    // tsdb-LDB.
    let tsdb_ldb = TsdbLdb::open(
        StorageEnv::open(dir.path().join("tsdbldb-store"), LatencyMode::Off).unwrap(),
        16,
        LeveledOptions {
            memtable_bytes: 128 << 10,
            ..LeveledOptions::default()
        },
    )
    .unwrap();

    // Identical fast-path ingest into all four.
    let metrics = gen.metric_names().len();
    let mut tu_ids = Vec::new();
    let mut tuldb_ids = Vec::new();
    let mut tsdb_ids = Vec::new();
    let mut tsdbldb_ids = Vec::new();
    for host in 0..gen.options().hosts {
        let (a, b, c, d): (Vec<u64>, Vec<u64>, Vec<u64>, Vec<u64>) = (0..metrics)
            .map(|m| {
                let l = gen.series_labels(host, m);
                let t = gen.ts_of(0);
                let v = gen.value(host, m, 0);
                (
                    tu.put(&l, t, v).unwrap(),
                    tu_ldb.put(&l, t, v).unwrap(),
                    tsdb.put(&l, t, v).unwrap(),
                    tsdb_ldb.put(&l, t, v).unwrap(),
                )
            })
            .fold(
                (Vec::new(), Vec::new(), Vec::new(), Vec::new()),
                |mut acc, x| {
                    acc.0.push(x.0);
                    acc.1.push(x.1);
                    acc.2.push(x.2);
                    acc.3.push(x.3);
                    acc
                },
            );
        tu_ids.push(a);
        tuldb_ids.push(b);
        tsdb_ids.push(c);
        tsdbldb_ids.push(d);
    }
    for step in 1..gen.steps() {
        let t = gen.ts_of(step);
        for host in 0..gen.options().hosts {
            for m in 0..metrics {
                let v = gen.value(host, m, step);
                tu.put_by_id(tu_ids[host][m], t, v).unwrap();
                tu_ldb.put_by_id(tuldb_ids[host][m], t, v).unwrap();
                tsdb.put_by_id(tsdb_ids[host][m], t, v).unwrap();
                tsdb_ldb.put_by_id(tsdbldb_ids[host][m], t, v).unwrap();
            }
        }
    }
    tu.flush_all().unwrap();
    tu_ldb.flush_all().unwrap();
    tsdb.flush_head().unwrap();
    tsdb_ldb.flush_all().unwrap();

    for pattern in QueryPattern::table2() {
        let spec = pattern.spec(&gen, 2);
        let a = normalize(
            tu.query(&spec.selectors, spec.start, spec.end)
                .unwrap()
                .into_iter()
                .map(|r| (r.labels, r.samples))
                .collect(),
        );
        let b = normalize(tu_ldb.query(&spec.selectors, spec.start, spec.end).unwrap());
        let c = normalize(tsdb.query(&spec.selectors, spec.start, spec.end).unwrap());
        let d = normalize(
            tsdb_ldb
                .query(&spec.selectors, spec.start, spec.end)
                .unwrap(),
        );
        assert_eq!(a, b, "{}: TimeUnion vs TU-LDB", pattern.name());
        assert_eq!(a, c, "{}: TimeUnion vs tsdb", pattern.name());
        assert_eq!(a, d, "{}: TimeUnion vs tsdb-LDB", pattern.name());
        assert!(!a.is_empty(), "{}: queries must match data", pattern.name());
    }
}

#[test]
fn cortex_sim_agrees_with_timeunion() {
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts: 2,
        duration_ms: 3_600_000,
        ..DevOpsOptions::default()
    });
    let dir = tempfile::tempdir().unwrap();
    let tu = TimeUnion::open(dir.path().join("tu"), Options::default()).unwrap();
    let cortex = timeunion::baselines::CortexSim::open(
        StorageEnv::open(dir.path().join("cortex"), LatencyMode::Virtual).unwrap(),
        TsdbOptions::default(),
        tu_tsdb::cortex::CortexCosts::default(),
    )
    .unwrap();

    // Remote-write batches of 1000 samples, like the paper's HTTP batches.
    let mut batch = Vec::new();
    for step in 0..gen.steps() {
        for host in 0..gen.options().hosts {
            for m in 0..gen.metric_names().len() {
                let l = gen.series_labels(host, m);
                let t = gen.ts_of(step);
                let v = gen.value(host, m, step);
                tu.put(&l, t, v).unwrap();
                batch.push((l, t, v));
                if batch.len() == 1000 {
                    cortex.remote_write(&batch).unwrap();
                    batch.clear();
                }
            }
        }
    }
    cortex.remote_write(&batch).unwrap();

    let sel = vec![
        Selector::exact("hostname", "host_1"),
        Selector::exact("metric", gen.metric_names()[3].clone()),
    ];
    let a = tu.query(&sel, 0, gen.end_ms()).unwrap();
    let b = cortex.query(&sel, 0, gen.end_ms()).unwrap();
    assert_eq!(a.len(), 1);
    assert_eq!(b.len(), 1);
    assert_eq!(a[0].samples, b[0].1);
}
