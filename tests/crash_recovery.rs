//! Crash-recovery integration: the sequence-ID logging scheme of §3.3
//! must restore identifiers, head chunks, and in-flight memtable data
//! after an unclean shutdown, and the WAL must shrink after checkpoints.

use timeunion::engine::{Options, Selector, TimeUnion};
use timeunion::lsm::TreeOptions;
use timeunion::model::Labels;

fn options() -> Options {
    Options {
        chunk_samples: 8,
        index_slots_per_segment: 1 << 14,
        wal_batch_records: 4,
        tree: TreeOptions {
            memtable_bytes: 8 << 10,
            ..TreeOptions::default()
        },
        ..Options::default()
    }
}

fn labels(host: usize, metric: usize) -> Labels {
    Labels::from_pairs([
        ("hostname", format!("host_{host}")),
        ("metric", format!("m{metric}")),
    ])
}

#[test]
fn full_timeline_survives_restart() {
    let dir = tempfile::tempdir().unwrap();
    let total_series = 20usize;
    let steps = 60i64;
    {
        let db = TimeUnion::open(dir.path().join("db"), options()).unwrap();
        let ids: Vec<u64> = (0..total_series)
            .map(|i| db.put(&labels(i / 5, i % 5), 0, 0.0).unwrap())
            .collect();
        for step in 1..steps {
            for (i, id) in ids.iter().enumerate() {
                db.put_by_id(*id, step * 1000, (i as i64 * step) as f64)
                    .unwrap();
            }
        }
        db.sync().unwrap();
        // Unclean: no flush_all; head chunks + memtable content must come
        // back from the WAL.
    }
    let db = TimeUnion::open(dir.path().join("db"), options()).unwrap();
    assert_eq!(db.series_count(), total_series);
    for i in 0..total_series {
        let sel = vec![
            Selector::exact("hostname", format!("host_{}", i / 5)),
            Selector::exact("metric", format!("m{}", i % 5)),
        ];
        let res = db.query(&sel, 0, steps * 1000).unwrap();
        // Several series share labels (i/5, i%5 collide); dedup on insert
        // means each unique label set exists once.
        assert_eq!(res.len(), 1, "series {i}");
        assert_eq!(res[0].samples.len() as i64, steps, "series {i}");
    }
}

#[test]
fn restart_is_idempotent_across_multiple_cycles() {
    let dir = tempfile::tempdir().unwrap();
    let l = Labels::from_pairs([("metric", "counter")]);
    let mut expected = Vec::new();
    for cycle in 0..4i64 {
        let db = TimeUnion::open(dir.path().join("db"), options()).unwrap();
        for k in 0..25i64 {
            let t = cycle * 25_000 + k * 1000;
            db.put(&l, t, (cycle * 100 + k) as f64).unwrap();
            expected.push(t);
        }
        db.sync().unwrap();
    }
    let db = TimeUnion::open(dir.path().join("db"), options()).unwrap();
    let res = db
        .query(&[Selector::exact("metric", "counter")], 0, 1_000_000)
        .unwrap();
    let got: Vec<i64> = res[0].samples.iter().map(|s| s.t).collect();
    assert_eq!(got, expected);
}

#[test]
fn groups_survive_restart_with_slots_intact() {
    let dir = tempfile::tempdir().unwrap();
    let gt = Labels::from_pairs([("host", "h1")]);
    let members: Vec<Labels> = (0..6)
        .map(|i| Labels::from_pairs([("metric", format!("m{i}"))]))
        .collect();
    let (gid_before, refs_before);
    {
        let db = TimeUnion::open(dir.path().join("db"), options()).unwrap();
        let (gid, refs) = db.put_group(&gt, &members, 0, &[0.0; 6]).unwrap();
        for step in 1..40i64 {
            let vals: Vec<f64> = (0..6).map(|m| (step * 10 + m) as f64).collect();
            db.put_group_fast(gid, &refs, step * 1000, &vals).unwrap();
        }
        db.sync().unwrap();
        gid_before = gid;
        refs_before = refs;
    }
    let db = TimeUnion::open(dir.path().join("db"), options()).unwrap();
    assert_eq!(db.group_count(), 1);
    // The recovered group accepts fast-path writes with the same handles.
    db.put_group_fast(gid_before, &refs_before, 100_000, &[1.0; 6])
        .unwrap();
    for m in 0..6 {
        let sel = vec![
            Selector::exact("host", "h1"),
            Selector::exact("metric", format!("m{m}")),
        ];
        let res = db.query(&sel, 0, 200_000).unwrap();
        assert_eq!(res.len(), 1, "member {m}");
        assert_eq!(res[0].samples.len(), 41, "member {m}");
        assert_eq!(res[0].samples[7].v, (7 * 10 + m) as f64);
    }
}

#[test]
fn wal_shrinks_after_checkpointed_flushes() {
    let dir = tempfile::tempdir().unwrap();
    let mut opts = options();
    opts.wal_purge_bytes = 1; // purge at every maintenance round
    let db = TimeUnion::open(dir.path().join("db"), opts).unwrap();
    let id = db
        .put(&Labels::from_pairs([("metric", "m")]), 0, 0.0)
        .unwrap();
    for i in 1..2_000i64 {
        db.put_by_id(id, i * 1000, i as f64).unwrap();
    }
    db.flush_all().unwrap();
    // Everything sealed + flushed: the WAL should be nearly empty (only
    // checkpoints and the unsealed tail survive the purge).
    let wal_len = std::fs::metadata(
        dir.path()
            .join("db")
            .join("block")
            .join("wal")
            .join("engine.log"),
    )
    .map(|m| m.len())
    .unwrap_or(0);
    assert!(
        wal_len < 2_000 * 16 / 4,
        "wal should shrink after checkpoints, still {wal_len} bytes"
    );
    // And recovery from the purged log still works.
    drop(db);
    let db = TimeUnion::open(dir.path().join("db"), options()).unwrap();
    let res = db
        .query(&[Selector::exact("metric", "m")], 0, 3_000_000)
        .unwrap();
    assert_eq!(res[0].samples.len(), 2_000);
}
