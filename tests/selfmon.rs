//! The self-monitoring plane, end to end: the recursion guard that keeps
//! the embedded telemetry engine's own I/O out of the primary accounting,
//! the `/query_range` history pinned against the offline `aggregate_step`
//! recompute, rule firing/resolution, and the HTTP endpoints.
//!
//! The `tu-obs` registry and heat map are process-global, so every test
//! takes a file-local lock and compares *deltas* — absolute values belong
//! to whichever test ran first.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use timeunion::engine::{aggregate_step, AggKind, Options, Selector, TimeUnion};
use timeunion::lsm::TreeOptions;
use timeunion::model::{Labels, Sample};
use tu_cloud::cost::LatencyMode;
use tu_cloud::ledger::CostLedger;
use tu_common::clock::{Clock, SimClock};
use tu_core::selfmon::{SelfMonitor, SelfmonOptions};
use tu_obs::Health;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn opts() -> Options {
    Options {
        chunk_samples: 8,
        latency: LatencyMode::Off,
        tree: TreeOptions {
            memtable_bytes: 16 << 10,
            max_sstable_bytes: 16 << 10,
            ..TreeOptions::default()
        },
        query_threads: 1,
        ingest_threads: 1,
        ..Options::default()
    }
}

const CLOUD_COUNTERS: [&str; 6] = [
    "get_requests",
    "put_requests",
    "delete_requests",
    "bytes_read",
    "bytes_written",
    "first_reads",
];

/// The primary cloud accounting formatted as one comparable string:
/// per-tier counter deltas plus the normalized `used_bytes` gauge level.
fn cloud_delta_string(base: &tu_obs::MetricsSnapshot, now: &tu_obs::MetricsSnapshot) -> String {
    let d = now.since(base);
    let mut out = String::new();
    for tier in ["block", "object"] {
        for c in CLOUD_COUNTERS {
            let name = format!("cloud.{tier}.{c}");
            out.push_str(&format!("{name}={} ", d.counter(&name).unwrap_or(0)));
        }
        let name = format!("cloud.{tier}.used_bytes");
        let level = now.gauge(&name).unwrap_or(0) - base.gauge(&name).unwrap_or(0);
        out.push_str(&format!("{name}={level}\n"));
    }
    out
}

/// Per-tier heat totals (partitions + unattributed) as integer deltas.
fn heat_delta_string(base: &tu_obs::HeatSnapshot, now: &tu_obs::HeatSnapshot) -> String {
    let mut out = String::new();
    for tier in ["block", "object"] {
        let b = base.tier_totals(tier);
        let n = now.tier_totals(tier);
        out.push_str(&format!(
            "{tier}: get={} put={} del={} br={} bw={} fr={}\n",
            n.get_requests - b.get_requests,
            n.put_requests - b.put_requests,
            n.delete_requests - b.delete_requests,
            n.bytes_read - b.bytes_read,
            n.bytes_written - b.bytes_written,
            n.first_reads - b.first_reads,
        ));
    }
    out
}

/// A registry snapshot with this run's `base` subtracted: counters and
/// histograms via `since`, gauges re-based to run-relative levels — so a
/// cost ledger fed these snapshots prices identical dollars across runs
/// regardless of what earlier tests left in the process-global registry.
fn normalized(base: &tu_obs::MetricsSnapshot) -> tu_obs::MetricsSnapshot {
    let mut snap = tu_obs::global().snapshot().since(base);
    snap.gauges = snap
        .gauges
        .into_iter()
        .map(|(k, v)| {
            let b = base.gauge(&k).unwrap_or(0);
            (k, v - b)
        })
        .collect();
    snap
}

/// The recursion guard, measured directly: after the primary workload
/// quiesces, N self-monitoring ticks churn the embedded engine (ingest,
/// WAL flushes, retention) — and the primary `cloud.<tier>.*` counters,
/// `used_bytes` gauges, and heat totals must not move by a single byte,
/// while the diverted-traffic tally proves the embedded I/O was real.
fn ticks_leave_primary_untouched(threads: usize) {
    let _g = lock();
    let dir = tempfile::tempdir().unwrap();
    let clock = SimClock::new(1_000_000);
    let mut o = opts();
    o.clock = Arc::new(clock.clone());
    let db = TimeUnion::open(dir.path(), o).unwrap();
    db.set_ingest_threads(threads);

    let ledger = CostLedger::new(64);
    let sm = SelfMonitor::open(
        dir.path(),
        Arc::new(clock.clone()),
        Arc::clone(&ledger),
        SelfmonOptions::default(),
    )
    .unwrap();
    // Fan the embedded engine's own batched ingest out too: if the worker
    // pool dropped the guard flag on its threads, the embedded WAL/flush
    // charges would leak into the primary counters below.
    sm.engine().set_ingest_threads(threads);

    // A real primary workload so the counters being protected are live.
    let ids: Vec<_> = (0..8)
        .map(|s| {
            let labels = Labels::from_pairs([
                ("metric", "selfmon_guard"),
                ("host", &format!("h{s}") as &str),
            ]);
            db.put(&labels, 0, 0.0).unwrap()
        })
        .collect();
    let batch: Vec<_> = (1..2_000i64)
        .map(|t| (ids[(t % 8) as usize], t * 1_000, t as f64))
        .collect();
    db.put_batch(&batch).unwrap();
    db.flush_all().unwrap();
    db.sync().unwrap();
    db.query(
        &[Selector::exact("metric", "selfmon_guard")],
        0,
        i64::MAX / 4,
    )
    .unwrap();

    // Quiesced: everything from here on is self-monitoring traffic only.
    let snap1 = tu_obs::global().snapshot();
    let heat1 = tu_obs::heat::snapshot();

    let ticks = 90u64; // > 60 ticks so the embedded retention pass runs too
    for _ in 0..ticks {
        let t = clock.advance(1_000);
        let snap = tu_obs::global().snapshot();
        sm.record(t, &snap);
    }

    let snap2 = tu_obs::global().snapshot();
    let heat2 = tu_obs::heat::snapshot();
    assert_eq!(
        cloud_delta_string(&snap1, &snap2),
        cloud_delta_string(&snap1, &snap1),
        "self-monitoring ticks leaked into the primary cloud accounting ({threads} threads)"
    );
    assert_eq!(
        heat_delta_string(&heat1, &heat2),
        heat_delta_string(&heat1, &heat1),
        "self-monitoring ticks leaked into the heat map ({threads} threads)"
    );

    // The guard diverted real traffic (the embedded engine's WAL syncs at
    // least), every tick ingested successfully, and the embedded engine
    // actually persisted under `<dir>/selfmon`.
    let d = snap2.since(&snap1);
    assert!(
        d.counter("obs.selfmon.diverted.requests").unwrap_or(0) > 0,
        "no diverted traffic recorded — was the embedded engine idle?"
    );
    assert_eq!(d.counter("obs.selfmon.flushes"), Some(ticks));
    assert!(d.counter("obs.selfmon.samples").unwrap_or(0) > 0);
    let entries = std::fs::read_dir(dir.path().join("selfmon"))
        .unwrap()
        .count();
    assert!(entries > 0, "embedded telemetry engine left no files");
}

#[test]
fn ticks_leave_primary_untouched_1_thread() {
    ticks_leave_primary_untouched(1);
}

#[test]
fn ticks_leave_primary_untouched_8_threads() {
    ticks_leave_primary_untouched(8);
}

/// One deterministic primary run: ingest in rounds, close a billing
/// window per round, optionally interleave self-monitoring ticks, and
/// return the formatted cloud/heat/ledger accounting for comparison.
fn identity_run(selfmon_on: bool) -> (String, String, String) {
    let dir = tempfile::tempdir().unwrap();
    let clock = SimClock::new(5_000_000);
    let mut o = opts();
    o.clock = Arc::new(clock.clone());
    let db = TimeUnion::open(dir.path(), o).unwrap();
    // The `TU_*_THREADS` env knobs outrank `Options` inside `open`; pin
    // the fan-out back to one worker so the WAL group-commit wave layout
    // (and with it the byte counts this test compares) is deterministic.
    db.set_query_threads(1);
    db.set_ingest_threads(1);

    let base = tu_obs::global().snapshot();
    let heat0 = tu_obs::heat::snapshot();
    let ledger = CostLedger::new(64);
    let sm = if selfmon_on {
        Some(
            SelfMonitor::open(
                dir.path(),
                Arc::new(clock.clone()),
                Arc::clone(&ledger),
                SelfmonOptions::default(),
            )
            .unwrap(),
        )
    } else {
        None
    };

    let ids: Vec<_> = (0..4)
        .map(|s| {
            let labels = Labels::from_pairs([
                ("metric", "selfmon_identity"),
                ("host", &format!("h{s}") as &str),
            ]);
            db.put(&labels, 0, 0.0).unwrap()
        })
        .collect();
    for round in 0..10i64 {
        let batch: Vec<_> = (0..200i64)
            .map(|i| {
                let t = round * 200 + i + 1;
                (ids[(t % 4) as usize], t * 1_000, t as f64)
            })
            .collect();
        db.put_batch(&batch).unwrap();
        let t = clock.advance(60_000);
        ledger.record(t, &normalized(&base));
        if let Some(sm) = &sm {
            sm.record(t, &tu_obs::global().snapshot());
        }
    }
    db.flush_all().unwrap();
    db.sync().unwrap();
    db.query(
        &[Selector::exact("metric", "selfmon_identity")],
        0,
        i64::MAX / 4,
    )
    .unwrap();
    let t = clock.advance(60_000);
    ledger.record(t, &normalized(&base));
    if let Some(sm) = &sm {
        sm.record(t, &tu_obs::global().snapshot());
    }

    let now = tu_obs::global().snapshot();
    let heat1 = tu_obs::heat::snapshot();
    (
        cloud_delta_string(&base, &now),
        heat_delta_string(&heat0, &heat1),
        ledger.to_json(),
    )
}

/// The acceptance bar: an identical single-threaded workload produces
/// byte-identical primary cloud counters, heat totals, and cost-ledger
/// dollars whether self-monitoring is off or ticking along with it.
#[test]
fn identical_accounting_with_selfmon_on_and_off() {
    let _g = lock();
    let (cloud_off, heat_off, ledger_off) = identity_run(false);
    let (cloud_on, heat_on, ledger_on) = identity_run(true);
    assert_eq!(
        cloud_off, cloud_on,
        "cloud counters diverged under self-monitoring"
    );
    assert_eq!(
        heat_off, heat_on,
        "heat totals diverged under self-monitoring"
    );
    assert_eq!(
        ledger_off, ledger_on,
        "cost-ledger dollars diverged under self-monitoring"
    );
}

/// Builds the exact JSON `/query_range` must produce for a single-series
/// metric, from the offline `aggregate_step` reference fold.
fn expected_range_json(
    metric: &str,
    agg: AggKind,
    raw: &[Sample],
    start: i64,
    end: i64,
    step: i64,
) -> String {
    let samples = aggregate_step(agg, raw, start, end, step);
    let mut out = format!(
        "{{\"metric\":\"{metric}\",\"agg\":\"{}\",\"start\":{start},\"end\":{end},\"step\":{step},\"series\":[",
        agg.name()
    );
    out.push_str(&format!(
        "{{\"labels\":{{\"metric\":\"{metric}\"}},\"samples\":["
    ));
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{},{}]", s.t, s.v));
    }
    out.push_str("]}]}");
    out
}

/// Ten-plus minutes of simulated history at a 1 s cadence, then
/// `/query_range` pinned byte-for-byte against `aggregate_step` recomputed
/// from the raw values that were handed to the monitor — for every
/// aggregate the endpoint accepts.
#[test]
fn query_range_matches_offline_recompute() {
    let _g = lock();
    let dir = tempfile::tempdir().unwrap();
    let clock = SimClock::new(10_000_000);
    let ledger = CostLedger::new(16);
    let sm = SelfMonitor::open(
        dir.path(),
        Arc::new(clock.clone()),
        ledger,
        SelfmonOptions::default(),
    )
    .unwrap();

    let signal = tu_obs::counter("test.selfmon.signal");
    let mut raw: Vec<Sample> = Vec::new();
    let mut t = clock.now_ms();
    for i in 0..660u64 {
        signal.add(i % 7 + 1);
        t = clock.advance(1_000);
        let snap = tu_obs::global().snapshot();
        raw.push(Sample::new(
            t,
            snap.counter("test.selfmon.signal").unwrap() as f64,
        ));
        sm.record(t, &snap);
    }

    let end = t;
    let start = end - 660_000;
    let step = 60_000;
    for agg in ["avg", "sum", "min", "max", "count", "rate"] {
        let kind = AggKind::parse(agg).unwrap();
        let got = sm.query_range_json(&format!(
            "metric=test.selfmon.signal&start={start}&end={end}&step={step}&agg={agg}"
        ));
        let want = expected_range_json("test.selfmon.signal", kind, &raw, start, end, step);
        assert_eq!(got, want, "agg={agg}");
        let windows = got.matches('[').count();
        assert!(windows > 10, "agg={agg} returned too few windows: {got}");
    }
}

/// Alert rules fire on violation, hold while violating, resolve once the
/// lookback window clears, and count their transitions; recording rules
/// materialize derived series the range endpoint can read back.
#[test]
fn rules_fire_resolve_and_record() {
    let _g = lock();
    let dir = tempfile::tempdir().unwrap();
    let clock = SimClock::new(20_000_000);
    let ledger = CostLedger::new(16);
    let rules = "\
# the gauge is the test's hand on the thermostat
alert high_queue if max(test.selfmon.queue) over 60s > 10
record queue_avg = avg(test.selfmon.queue) over 60s step 60s
";
    let sm = SelfMonitor::open(
        dir.path(),
        Arc::new(clock.clone()),
        ledger,
        SelfmonOptions {
            rules: rules.to_string(),
            ..SelfmonOptions::default()
        },
    )
    .unwrap();
    assert_eq!(sm.rules().alerts.len(), 1);
    assert_eq!(sm.rules().records.len(), 1);

    let base = tu_obs::global().snapshot();
    let queue = tu_obs::gauge("test.selfmon.queue");
    let tick = |advance_ms: i64| {
        let t = clock.advance(advance_ms);
        sm.record(t, &tu_obs::global().snapshot());
        t
    };

    // Violating samples. Aggregate windows are half-open `[start, end)`,
    // so the tick that *ingests* a sample at `end` does not yet see it —
    // the next tick's window does.
    queue.set(50);
    tick(30_000);
    tick(30_000);
    let fired_at = tick(30_000);
    let firing = sm.firing_alerts();
    assert_eq!(
        firing.len(),
        1,
        "alert did not fire: {:?}",
        sm.alerts_json()
    );
    assert_eq!(firing[0].name, "high_queue");
    assert_eq!(firing[0].value, 50.0);
    assert!(firing[0].since_ms <= fired_at);
    assert!(sm.alerts_json().contains("\"state\":\"firing\""));

    // Still violating: no new transition.
    tick(30_000);
    assert_eq!(sm.firing_alerts().len(), 1);

    // Recovery: jump far enough that the lookback window holds only the
    // healthy level. The intermediate empty window (no data at all) must
    // keep the alert firing, not resolve it.
    tick(600_000);
    assert_eq!(
        sm.firing_alerts().len(),
        1,
        "empty window resolved the alert"
    );
    queue.set(1);
    tick(600_000);
    tick(30_000);
    assert_eq!(sm.firing_alerts().len(), 0, "alert failed to resolve");
    assert!(sm.alerts_json().contains("\"state\":\"ok\""));

    let d = tu_obs::global().snapshot().since(&base);
    assert_eq!(d.counter("core.selfmon.alerts.fired"), Some(1));
    assert_eq!(d.counter("core.selfmon.alerts.resolved"), Some(1));

    // The recording rule materialized a derived series under its own name.
    let t = clock.now_ms();
    let derived = sm.query_range_json(&format!(
        "metric=queue_avg&start={}&end={t}&step=60000&agg=max",
        t - 3_600_000
    ));
    assert!(
        derived.contains("\"metric\":\"queue_avg\"") && derived.contains("\"samples\":[["),
        "recording rule produced no derived samples: {derived}"
    );
    assert!(sm.series_json().contains("queue_avg"));
}

fn raw_request(addr: SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request).unwrap();
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    String::from_utf8_lossy(&response).into_owned()
}

fn get(addr: SocketAddr, path: &str) -> String {
    raw_request(addr, format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())
}

fn status_of(response: &str) -> u32 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"))
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

/// The served plane: a firing alert degrades `/healthz` without turning
/// it 503, and `/query_range`, `/series`, `/labels`, `/alerts` answer
/// over HTTP exactly what the self-monitor renders directly.
#[test]
fn http_endpoints_and_degraded_health() {
    let _g = lock();
    let dir = tempfile::tempdir().unwrap();
    let clock = SimClock::new(30_000_000);
    let mut o = opts();
    o.clock = Arc::new(clock.clone());
    o.serve_addr = Some("127.0.0.1:0".to_string());
    o.selfmon = Some(SelfmonOptions {
        rules: "alert always_on if count(core.ingest.samples) over 120s >= 0\n".to_string(),
        ..SelfmonOptions::default()
    });
    let db = Arc::new(TimeUnion::open(dir.path(), o).unwrap());
    let addr = db.serve_if_configured().unwrap().expect("serve_addr set");
    let sm = db.selfmon().expect("self-monitoring plane");

    let labels = Labels::from_pairs([("metric", "selfmon_http"), ("host", "h1")]);
    db.put(&labels, 1, 1.0).unwrap();
    // Two manual ticks so the seeded rule's lookback window (half-open)
    // contains history — the background monitor also ticks concurrently,
    // which must not disturb any of the assertions below.
    for _ in 0..2 {
        let t = clock.advance(60_000);
        sm.record(t, &tu_obs::global().snapshot());
    }

    let report = db.health_report();
    let check = report
        .checks
        .iter()
        .find(|c| c.name == "alert:always_on")
        .expect("firing alert missing from health report");
    assert_eq!(check.health, Health::Degraded);
    assert_eq!(report.status(), Health::Degraded);
    assert!(report.healthy(), "a firing alert must degrade, not kill");

    let healthz = get(addr, "/healthz");
    assert_eq!(status_of(&healthz), 200, "degraded must still answer 200");
    assert!(body_of(&healthz).contains("alert:always_on"));
    assert!(body_of(&healthz).contains("\"status\":\"degraded\""));

    let alerts = get(addr, "/alerts");
    assert_eq!(status_of(&alerts), 200);
    assert!(body_of(&alerts).contains("\"name\":\"always_on\""));
    assert!(body_of(&alerts).contains("\"state\":\"firing\""));

    // Explicit bounds exclude the live edge, so the HTTP answer must be
    // byte-identical to the direct rendering even while the background
    // monitor keeps ticking.
    let end = clock.now_ms();
    let query = format!(
        "metric=core.ingest.samples&start={}&end={end}&step=60000&agg=max",
        end - 600_000
    );
    let over_http = get(addr, &format!("/query_range?{query}"));
    assert_eq!(status_of(&over_http), 200);
    assert_eq!(body_of(&over_http), sm.query_range_json(&query));
    assert!(body_of(&over_http).contains("\"metric\":\"core.ingest.samples\""));

    let bad = get(addr, "/query_range?step=60000");
    assert!(
        body_of(&bad).contains("\"error\""),
        "missing metric= must error: {bad}"
    );

    let series = get(addr, "/series");
    assert_eq!(status_of(&series), 200);
    assert!(body_of(&series).contains("core.ingest.samples"));
    let labels_resp = get(addr, "/labels");
    assert_eq!(status_of(&labels_resp), 200);
    assert!(body_of(&labels_resp).contains("\"metric\":["));

    db.stop_serving();
    assert!(db.selfmon().is_none(), "stop_serving must drop the plane");
}
