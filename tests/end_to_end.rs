//! End-to-end integration: TSBS DevOps workload through the full
//! TimeUnion stack — ingest, seal, compact to both tiers, query with
//! every Table 2 pattern — validated against generator ground truth.

use timeunion::engine::{Options, TimeUnion};
use timeunion::lsm::TreeOptions;
use timeunion::model::Labels;
use timeunion::tsbs::{DevOpsGenerator, DevOpsOptions, QueryPattern};
use tu_core::query::{aggregate_step, AggKind};

const MIN: i64 = 60_000;

fn small_options() -> Options {
    Options {
        chunk_samples: 16,
        index_slots_per_segment: 1 << 14,
        tree: TreeOptions {
            memtable_bytes: 256 << 10,
            l0_partition_ms: 30 * MIN,
            l2_partition_ms: 120 * MIN,
            max_sstable_bytes: 256 << 10,
            ..TreeOptions::default()
        },
        ..Options::default()
    }
}

fn generator(hosts: usize, hours: i64) -> DevOpsGenerator {
    DevOpsGenerator::new(DevOpsOptions {
        hosts,
        start_ms: 0,
        interval_ms: 60_000,
        duration_ms: hours * 3_600_000,
        seed: 77,
    })
}

/// Ingests individual series via the fast path; returns ids[host][metric].
fn ingest_series(db: &TimeUnion, gen: &DevOpsGenerator) -> Vec<Vec<u64>> {
    let mut ids = Vec::new();
    for host in 0..gen.options().hosts {
        let row: Vec<u64> = (0..gen.metric_names().len())
            .map(|m| {
                db.put(
                    &gen.series_labels(host, m),
                    gen.ts_of(0),
                    gen.value(host, m, 0),
                )
                .unwrap()
            })
            .collect();
        ids.push(row);
    }
    for step in 1..gen.steps() {
        let t = gen.ts_of(step);
        for (host, row) in ids.iter().enumerate() {
            for (m, id) in row.iter().enumerate() {
                db.put_by_id(*id, t, gen.value(host, m, step)).unwrap();
            }
        }
    }
    ids
}

#[test]
fn tsbs_patterns_match_ground_truth() {
    let dir = tempfile::tempdir().unwrap();
    let db = TimeUnion::open(dir.path().join("db"), small_options()).unwrap();
    let gen = generator(10, 6);
    ingest_series(&db, &gen);
    db.flush_all().unwrap(); // exercise L0 -> L1 -> L2 before querying

    let stats = db.tree_stats();
    assert!(
        stats.l2_partitions > 0,
        "data must reach the slow tier: {stats:?}"
    );

    for pattern in QueryPattern::all() {
        let spec = pattern.spec(&gen, 4);
        let result = db.query(&spec.selectors, spec.start, spec.end).unwrap();
        // Expected series: hosts x metrics matched by the selectors.
        let expect_series = gen
            .metric_names()
            .iter()
            .filter(|m| spec.selectors[1].matches_value(m))
            .count()
            * (0..gen.options().hosts)
                .filter(|h| spec.selectors[0].matches_value(&format!("host_{h}")))
                .count();
        assert_eq!(
            result.len(),
            expect_series,
            "{}: series count",
            pattern.name()
        );
        // Every returned series matches the generator exactly.
        for series in &result {
            let host: usize = series.labels.get("hostname").unwrap()[5..].parse().unwrap();
            let metric = gen
                .metric_names()
                .iter()
                .position(|m| m == series.labels.get("metric").unwrap())
                .unwrap();
            let expected: Vec<tu_common::Sample> = (0..gen.steps())
                .map(|s| tu_common::Sample::new(gen.ts_of(s), gen.value(host, metric, s)))
                .filter(|s| s.t >= spec.start && s.t < spec.end)
                .collect();
            assert_eq!(
                series.samples,
                expected,
                "{}: samples of {}",
                pattern.name(),
                series.labels
            );
            // Aggregation smoke check: windows are monotone in time.
            let agg = aggregate_step(
                AggKind::Max,
                &series.samples,
                spec.start,
                spec.end,
                spec.step_ms,
            );
            assert!(agg.windows(2).all(|w| w[0].t < w[1].t));
        }
    }
}

#[test]
fn grouped_ingest_equals_individual_ingest() {
    let gen = generator(4, 2);
    let dir = tempfile::tempdir().unwrap();

    let flat = TimeUnion::open(dir.path().join("flat"), small_options()).unwrap();
    ingest_series(&flat, &gen);
    flat.flush_all().unwrap();

    let grouped = TimeUnion::open(dir.path().join("grouped"), small_options()).unwrap();
    let member_tags: Vec<Labels> = gen
        .metric_names()
        .iter()
        .map(|m| Labels::from_pairs([("metric", m.as_str())]))
        .collect();
    let mut handles = Vec::new();
    for host in 0..gen.options().hosts {
        let h = grouped
            .put_group(
                &gen.host_labels(host),
                &member_tags,
                gen.ts_of(0),
                &gen.host_row(host, 0),
            )
            .unwrap();
        handles.push(h);
    }
    for step in 1..gen.steps() {
        for (host, (gid, refs)) in handles.iter().enumerate() {
            grouped
                .put_group_fast(*gid, refs, gen.ts_of(step), &gen.host_row(host, step))
                .unwrap();
        }
    }
    grouped.flush_all().unwrap();

    // Every pattern returns identical (labels, samples) sets from both.
    for pattern in QueryPattern::table2() {
        let spec = pattern.spec(&gen, 1);
        let a = flat.query(&spec.selectors, spec.start, spec.end).unwrap();
        let b = grouped
            .query(&spec.selectors, spec.start, spec.end)
            .unwrap();
        assert_eq!(a.len(), b.len(), "{}", pattern.name());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.labels, y.labels, "{}", pattern.name());
            assert_eq!(x.samples, y.samples, "{}", pattern.name());
        }
    }
}

#[test]
fn out_of_order_volumes_remain_correct() {
    let gen = generator(3, 2);
    let dir = tempfile::tempdir().unwrap();
    let db = TimeUnion::open(dir.path().join("db"), small_options()).unwrap();
    let ids = ingest_series(&db, &gen);
    db.flush_all().unwrap();

    // Inject p10 late data and verify both the late and on-time points.
    let late: Vec<tu_tsbs::ooo::LateSample> = tu_tsbs::ooo::late_samples(&gen, 0.10, 99).collect();
    for s in &late {
        db.put_by_id(ids[s.host][s.metric], s.t, s.v).unwrap();
    }
    db.flush_all().unwrap();

    let stats = db.tree_stats();
    assert!(
        stats.patches_created > 0 || stats.stale_l0_merges > 0,
        "late data must exercise the out-of-order machinery: {stats:?}"
    );

    // Spot-check several late samples are queryable with their values.
    for s in late.iter().step_by(37) {
        let sel = vec![
            timeunion::engine::Selector::exact("hostname", format!("host_{}", s.host)),
            timeunion::engine::Selector::exact("metric", gen.metric_names()[s.metric].clone()),
        ];
        let res = db.query(&sel, s.t, s.t + 1).unwrap();
        assert_eq!(res.len(), 1, "late sample at {} missing", s.t);
        // The newest write for that timestamp wins; duplicates in the late
        // stream may overwrite each other, so only presence is asserted.
        assert_eq!(res[0].samples.len(), 1);
    }
}
