//! Per-operation cost attribution must be *exact*: the tier charges a
//! profiled query reports (`QueryProfile::{block,object}`) have to equal
//! the deltas of the global `cloud.<tier>.*` counters over the same call
//! — no double-counting, no leakage to other contexts — at every query
//! fan-out width, and with concurrent profiled queries racing each other
//! the per-profile sums must still partition the global deltas.
//!
//! This file holds a single test on purpose: integration-test files run
//! in their own process, so the global registry deltas below are exact.

use rand::{Rng, SeedableRng};
use timeunion::engine::{Options, QueryProfile, Selector, TimeUnion};
use timeunion::lsm::TreeOptions;
use timeunion::model::Labels;
use tu_cloud::cost::LatencyMode;

const MIN: i64 = 60_000;

/// The dynamically named per-tier counter family from `tu-cloud`'s cost
/// model; `tier_fields` returns the `TierProfile` field mirroring each.
const TIER_COUNTERS: [&str; 10] = [
    "cloud.block.get_requests",
    "cloud.block.put_requests",
    "cloud.block.bytes_read",
    "cloud.block.bytes_written",
    "cloud.block.first_reads",
    "cloud.object.get_requests",
    "cloud.object.put_requests",
    "cloud.object.bytes_read",
    "cloud.object.bytes_written",
    "cloud.object.first_reads",
];

fn tier_fields(p: &QueryProfile) -> [u64; 10] {
    [
        p.block.get_requests,
        p.block.put_requests,
        p.block.bytes_read,
        p.block.bytes_written,
        p.block.first_reads,
        p.object.get_requests,
        p.object.put_requests,
        p.object.bytes_read,
        p.object.bytes_written,
        p.object.first_reads,
    ]
}

fn cloud_counters() -> [u64; 10] {
    let snap = timeunion::obs::global().snapshot();
    TIER_COUNTERS.map(|name| snap.counter(name).unwrap_or(0))
}

#[test]
fn profiled_query_charges_match_global_deltas_exactly() {
    let dir = tempfile::tempdir().unwrap();
    let db = TimeUnion::open(
        dir.path(),
        Options {
            chunk_samples: 8,
            latency: LatencyMode::Virtual,
            tree: TreeOptions {
                memtable_bytes: 16 << 10,
                max_sstable_bytes: 16 << 10,
                // A deliberately tiny block cache so every query round
                // keeps paying real storage Gets (nonzero deltas to pin).
                block_cache_bytes: 4 << 10,
                ..TreeOptions::default()
            },
            ..Options::default()
        },
    )
    .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0C0FFEE);

    // Seeded randomized workload: 16 series over 4 metrics, jittered
    // timestamps, then a flush so queries span SSTables and head chunks.
    let mut ids = Vec::new();
    for s in 0..16 {
        let labels = Labels::from_pairs([
            ("metric", format!("m{}", s % 4).as_str()),
            ("host", format!("h{s}").as_str()),
        ]);
        ids.push(db.put(&labels, 0, s as f64).unwrap());
    }
    for _ in 0..200 {
        let base: i64 = rng.gen_range(1..600i64) * MIN;
        for &id in &ids {
            let jitter: i64 = rng.gen_range(-5 * MIN..5 * MIN);
            db.put_by_id(id, (base + jitter).max(1), rng.gen_range(0.0..100.0))
                .unwrap();
        }
    }
    db.flush_all().unwrap();
    db.sync().unwrap();

    let cases: Vec<Vec<Selector>> = vec![
        vec![Selector::exact("metric", "m0")],
        vec![Selector::exact("metric", "m1")],
        vec![Selector::exact("metric", "m2")],
        vec![Selector::exact("metric", "m3")],
        vec![Selector::exact("host", "h7")],
    ];
    let (start, end) = (0i64, 600 * MIN);

    // Sequential baseline results: profiling must never change answers.
    db.set_query_threads(1);
    let baseline: Vec<_> = cases
        .iter()
        .map(|sel| db.query(sel, start, end).unwrap())
        .collect();
    assert!(baseline.iter().all(|r| !r.is_empty()));

    // --- single-query exactness at both fan-out widths --------------------
    for threads in [1usize, 8] {
        db.set_query_threads(threads);
        for (sel, expect) in cases.iter().zip(&baseline) {
            let before = cloud_counters();
            let (res, profile) = db.query_profiled(sel, start, end).unwrap();
            let after = cloud_counters();

            assert_eq!(&res, expect, "profiling changed the result of {sel:?}");
            assert_eq!(profile.threads, threads);
            let got = tier_fields(&profile);
            for i in 0..TIER_COUNTERS.len() {
                assert_eq!(
                    got[i],
                    after[i] - before[i],
                    "{}: profile={}, global delta={} (threads={threads})",
                    TIER_COUNTERS[i],
                    got[i],
                    after[i] - before[i]
                );
            }
        }
    }

    // The tiny cache must have forced the profiled queries to actually
    // touch storage — otherwise the equalities above are vacuous.
    let touched = cloud_counters();
    assert!(
        touched[0] + touched[5] > 0,
        "workload never charged a cloud Get"
    );

    // --- concurrent profiled queries partition the global deltas ----------
    for threads in [1usize, 8] {
        db.set_query_threads(threads);
        let before = cloud_counters();
        let profiles: Vec<QueryProfile> = std::thread::scope(|s| {
            let handles: Vec<_> = cases
                .iter()
                .zip(&baseline)
                .map(|(sel, expect)| {
                    let db = &db;
                    s.spawn(move || {
                        let (res, profile) = db.query_profiled(sel, start, end).unwrap();
                        assert_eq!(&res, expect, "concurrent run changed {sel:?}");
                        profile
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let after = cloud_counters();

        for (i, name) in TIER_COUNTERS.iter().enumerate() {
            let summed: u64 = profiles.iter().map(|p| tier_fields(p)[i]).sum();
            assert_eq!(
                summed,
                after[i] - before[i],
                "{name}: sum over {} concurrent profiles={summed}, global delta={} \
                 (threads={threads})",
                profiles.len(),
                after[i] - before[i]
            );
        }
    }
}
