//! Capacity planning with the paper's analytical models: given a fleet
//! size, should you group? How much slow-storage traffic does the
//! single-slow-level design save? What does each tier cost per month?
//!
//! Uses the grouping model (Equations 1–6), the compaction cost model
//! (Equations 7–10), and the Figure 1a price sheet.
//!
//! Run with: `cargo run --release --example capacity_planning`

use timeunion::cloud::pricing::{self, Tier};
use tu_core::analysis::GroupingModel;
use tu_lsm::analysis::{CostModel, GB};

fn main() {
    println!("== TimeUnion capacity planner ==\n");

    // --- index space: to group or not to group (Equations 1-2) -------------
    println!("Grouping analysis (TSBS DevOps constants: Sg=101, Tu=118, Tg=1):");
    println!(
        "{:>12} {:>14} {:>14} {:>8}",
        "series", "flat index", "grouped index", "saving"
    );
    for n in [100_000.0, 1_000_000.0, 10_000_000.0] {
        let m = GroupingModel::tsbs_devops(n);
        let flat = m.cost_without_grouping();
        let grouped = m.cost_with_grouping();
        println!(
            "{:>12} {:>11.1} MB {:>11.1} MB {:>7.1}%",
            n as u64,
            flat / 1e6,
            grouped / 1e6,
            (1.0 - grouped / flat) * 100.0
        );
    }
    let m = GroupingModel::tsbs_devops(1e6);
    println!(
        "break-even group size: {:.1} series/group (DevOps hosts have {:.0})\n",
        m.break_even_group_size(),
        m.s_g
    );

    // --- slow-tier write traffic (Equations 7-10) ----------------------------
    println!("Compaction traffic to slow storage (Sb=64MB, M=10, Sfast=1GB):");
    println!(
        "{:>10} {:>16} {:>16} {:>12}",
        "data", "classic LSM", "one slow level", "saved"
    );
    for data_gb in [10.0, 100.0, 1000.0] {
        let model = CostModel {
            data_size: data_gb * GB,
            ..CostModel::paper_example()
        };
        println!(
            "{:>8} GB {:>13.1} GB {:>13.1} GB {:>9.1} GB",
            data_gb,
            model.traditional_slow_write_bytes() / GB,
            model.single_level_slow_write_bytes() / GB,
            model.saving_bytes() / GB
        );
    }
    println!();

    // --- monthly storage bill (Figure 1a prices) ------------------------------
    println!("Monthly cost of a 2 TB dataset by placement:");
    let bytes = 2u64 << 40;
    for (tier, label) in [
        (Tier::Ram, "all in RAM"),
        (Tier::Block, "all on block storage"),
        (Tier::Object, "all on object storage"),
    ] {
        println!(
            "  {label:24} ${:>10.2}",
            pricing::monthly_cost_usd(tier, bytes)
        );
    }
    // The hybrid TimeUnion split: ~2 hours hot on block storage, the rest
    // cold on object storage (with a 30x compression ratio end-to-end the
    // hot fraction is tiny).
    let hot = bytes / 100;
    let hybrid = pricing::monthly_cost_usd(Tier::Block, hot)
        + pricing::monthly_cost_usd(Tier::Object, bytes - hot);
    println!("  {:24} ${hybrid:>10.2}", "hybrid (TimeUnion split)");
}
