//! IoT sensor fleet with flaky connectivity: groups, missing members,
//! out-of-order backfill, and retention.
//!
//! Devices in a region report a handful of sensor channels as a group
//! (Figure 5's region/device example). Some devices skip rounds (missing
//! members -> NULL fill), and offline devices re-send buffered readings
//! late (out-of-order handling, §3.3). A retention policy ages old data
//! out.
//!
//! Run with: `cargo run --release --example iot_fleet`

use std::sync::Arc;

use timeunion::engine::{Options, Selector, TimeUnion};
use timeunion::model::Labels;
use tu_common::clock::SimClock;

const CHANNELS: &[&str] = &["temperature", "humidity", "vibration", "voltage"];
const MINUTE: i64 = 60_000;
const HOUR: i64 = 60 * MINUTE;

fn reading(device: usize, channel: usize, t: i64) -> f64 {
    20.0 + device as f64 + (t as f64 / HOUR as f64).sin() * 5.0 + channel as f64 * 0.1
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempfile::tempdir()?;
    let clock = SimClock::new(0);
    let opts = Options {
        retention_ms: Some(24 * HOUR),
        clock: Arc::new(clock.clone()),
        ..Options::default()
    };
    let db = TimeUnion::open(dir.path().join("db"), opts)?;

    // Register 30 devices across 3 regions; each device's channels form a
    // group keyed by (region, device).
    let mut fleets = Vec::new();
    let member_tags: Vec<Labels> = CHANNELS
        .iter()
        .map(|c| Labels::from_pairs([("channel", *c)]))
        .collect();
    for device in 0..30 {
        let group_tags = Labels::from_pairs([
            ("region", format!("region-{}", device % 3)),
            ("device", format!("dev-{device:03}")),
        ]);
        let values: Vec<f64> = (0..CHANNELS.len()).map(|c| reading(device, c, 0)).collect();
        let (gid, refs) = db.put_group(&group_tags, &member_tags, 0, &values)?;
        fleets.push((gid, refs));
    }

    // 6 hours of minutely reports. Device 7 goes offline between minute
    // 90 and 150 (missing member rounds); it backfills after reconnecting.
    let mut backfill = Vec::new();
    for minute in 1..6 * 60 {
        let t = minute * MINUTE;
        clock.set(t);
        for (device, (gid, refs)) in fleets.iter().enumerate() {
            let offline = device == 7 && (90..150).contains(&minute);
            if offline {
                backfill.push((device, t));
                continue;
            }
            let values: Vec<f64> = (0..CHANNELS.len()).map(|c| reading(device, c, t)).collect();
            db.put_group_fast(*gid, refs, t, &values)?;
        }
    }
    println!("device 7 buffered {} rounds while offline", backfill.len());

    // Reconnect: the device re-sends its buffered rounds (out-of-order).
    for (device, t) in &backfill {
        let (gid, refs) = &fleets[*device];
        let values: Vec<f64> = (0..CHANNELS.len())
            .map(|c| reading(*device, c, *t))
            .collect();
        db.put_group_fast(*gid, refs, *t, &values)?;
    }
    db.sync()?;

    // The backfilled window reads complete.
    let res = db.query(
        &[
            Selector::exact("device", "dev-007"),
            Selector::exact("channel", "temperature"),
        ],
        80 * MINUTE,
        160 * MINUTE,
    )?;
    println!(
        "dev-007 temperature over the outage window: {} samples (expected 80)",
        res[0].samples.len()
    );
    assert_eq!(res[0].samples.len(), 80);

    // Region-level selector fans out to every device channel in a region.
    let res = db.query(&[Selector::exact("region", "region-1")], 0, 6 * HOUR)?;
    println!(
        "region-1 matched {} channel series across {} devices",
        res.len(),
        res.len() / CHANNELS.len()
    );

    // Age everything out: jump the clock past the retention window.
    clock.set(40 * HOUR);
    let (partitions, objects) = db.apply_retention()?;
    println!("retention removed {partitions} partitions and {objects} idle group objects");
    let res = db.query(&[Selector::exact("region", "region-1")], 0, 48 * HOUR)?;
    println!("after retention, region-1 matches {} series", res.len());
    Ok(())
}
