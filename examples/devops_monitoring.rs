//! DevOps performance monitoring: the paper's motivating workload.
//!
//! Ingests a TSBS DevOps fleet (each host's 101 metrics form one
//! timeseries group), then runs the Table 2 query patterns with MAX
//! aggregation — the shape of a Grafana dashboard over TimeUnion.
//!
//! Run with: `cargo run --release --example devops_monitoring`
//!
//! Pass `--serve <addr>` (or set `TU_SERVE_ADDR`) to watch the run live:
//! `curl http://<addr>/vitals` shows windowed ingest and cloud-request
//! rates while the fleet streams in.

use std::sync::Arc;

use timeunion::engine::{Options, TimeUnion};
use timeunion::model::Labels;
use timeunion::tsbs::{DevOpsGenerator, DevOpsOptions, QueryPattern};
use tu_core::query::{aggregate_step, AggKind};

/// Value of `--<flag> <v>` or `--<flag>=<v>`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let eq = format!("{flag}=");
    args.iter().enumerate().find_map(|(i, a)| {
        a.strip_prefix(&eq)
            .map(|v| v.to_string())
            .or_else(|| (a == flag).then(|| args.get(i + 1).cloned()).flatten())
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = tempfile::tempdir()?;
    let opts = Options {
        serve_addr: flag_value(&args, "--serve"),
        ..Options::default()
    };
    let db = Arc::new(TimeUnion::open(dir.path().join("db"), opts)?);
    if let Some(addr) = db.serve_if_configured()? {
        println!("live endpoints on http://{addr} — try /metrics /healthz /vitals");
    }

    // A small fleet: 20 hosts x 101 metrics, 2 hours at 30 s scrapes.
    let gen = DevOpsGenerator::new(DevOpsOptions {
        hosts: 20,
        start_ms: 0,
        interval_ms: 30_000,
        duration_ms: 2 * 3_600_000,
        seed: 2024,
    });
    println!(
        "ingesting {} hosts x {} metrics x {} scrapes = {} samples (grouped)",
        gen.options().hosts,
        gen.metric_names().len(),
        gen.steps(),
        gen.total_samples()
    );

    // First scrape via the slow path registers the group and its members;
    // subsequent scrapes use the fast path with the returned slots.
    let member_tags: Vec<Labels> = gen
        .metric_names()
        .iter()
        .map(|m| Labels::from_pairs([("metric", m.as_str())]))
        .collect();
    let mut handles = Vec::new();
    let t0 = tu_obs::Stopwatch::start();
    for host in 0..gen.options().hosts {
        let (gid, refs) = db.put_group(
            &gen.host_labels(host),
            &member_tags,
            gen.ts_of(0),
            &gen.host_row(host, 0),
        )?;
        handles.push((gid, refs));
    }
    for step in 1..gen.steps() {
        let t = gen.ts_of(step);
        for (host, (gid, refs)) in handles.iter().enumerate() {
            db.put_group_fast(*gid, refs, t, &gen.host_row(host, step))?;
        }
    }
    let ingest_s = t0.elapsed_secs_f64();
    println!(
        "ingested in {:.2}s ({:.0} samples/s)",
        ingest_s,
        gen.total_samples() as f64 / ingest_s
    );
    db.sync()?;

    // Dashboard queries: every Table 2 pattern, MAX per 5-minute window.
    for pattern in QueryPattern::table2() {
        let spec = pattern.spec(&gen, 3);
        let t0 = tu_obs::Stopwatch::start();
        let result = db.query(&spec.selectors, spec.start, spec.end)?;
        let elapsed_s = t0.elapsed_secs_f64();
        let windows: usize = result
            .iter()
            .map(|s| {
                aggregate_step(AggKind::Max, &s.samples, spec.start, spec.end, spec.step_ms).len()
            })
            .sum();
        println!(
            "{:10} -> {} series, {} aggregated windows, {:.2}ms",
            pattern.name(),
            result.len(),
            windows,
            elapsed_s * 1e3
        );
    }

    let stats = db.tree_stats();
    println!(
        "tree: {} L0 / {} L1 / {} L2 partitions, fast {} B, slow {} B",
        stats.l0_partitions,
        stats.l1_partitions,
        stats.l2_partitions,
        stats.fast_bytes,
        stats.slow_bytes
    );
    db.begin_shutdown();
    db.stop_serving();
    Ok(())
}
