//! Quickstart: open a TimeUnion instance, insert individual timeseries
//! and a timeseries group, and query them back with tag selectors.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Optional exporter flags (used by CI to validate the formats):
//! `--trace-out <path>` records a flight-recorder timeline and writes it
//! as chrome://tracing JSON; `--prom-out <path>` writes the final metrics
//! snapshot in the Prometheus text exposition format.
//!
//! Live observability plane: `--serve <addr>` (or `TU_SERVE_ADDR`) starts
//! the embedded HTTP endpoint — `curl http://<addr>/metrics` while the run
//! is live. `--serve-hold-ms <ms>` keeps the process serving that long
//! after the workload so a scraper (CI's smoke job) can probe it, then
//! exits cleanly.

use std::sync::Arc;

use timeunion::engine::{Options, Selector, TimeUnion};
use timeunion::model::Labels;

/// Value of `--<flag> <v>` or `--<flag>=<v>`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let eq = format!("{flag}=");
    args.iter().enumerate().find_map(|(i, a)| {
        a.strip_prefix(&eq)
            .map(|v| v.to_string())
            .or_else(|| (a == flag).then(|| args.get(i + 1).cloned()).flatten())
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = flag_value(&args, "--trace-out");
    let prom_out = flag_value(&args, "--prom-out");
    let hold_ms: u64 = flag_value(&args, "--serve-hold-ms")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(0);
    if trace_out.is_some() {
        timeunion::obs::flight().enable(4096);
    }

    let dir = tempfile::tempdir()?;
    let opts = Options {
        serve_addr: flag_value(&args, "--serve"),
        ..Options::default()
    };
    let db = Arc::new(TimeUnion::open(dir.path().join("db"), opts)?);
    // Binds when --serve or TU_SERVE_ADDR asked for it; port 0 works.
    if let Some(addr) = db.serve_if_configured()? {
        println!("live endpoints on http://{addr} — try /metrics /healthz /vitals");
    }

    // --- individual timeseries ------------------------------------------------
    // Slow path: pass the tags; the engine returns the series ID.
    let cpu = Labels::from_pairs([("metric", "cpu_usage"), ("host", "web-1")]);
    let id = db.put(&cpu, 1_000, 12.5)?;
    // Fast path: insert by ID, skipping tag resolution (§3.4).
    for i in 2..=60 {
        db.put_by_id(id, i * 1_000, 12.5 + (i % 7) as f64)?;
    }

    // --- a timeseries group ----------------------------------------------------
    // All metrics of one host share their scrape timestamps; modelling them
    // as a group deduplicates the timestamp column (§3.1).
    let host_tags = Labels::from_pairs([("host", "web-2")]);
    let members = vec![
        Labels::from_pairs([("metric", "mem_used")]),
        Labels::from_pairs([("metric", "mem_free")]),
    ];
    let (gid, refs) = db.put_group(&host_tags, &members, 1_000, &[512.0, 1536.0])?;
    for i in 2..=60 {
        db.put_group_fast(
            gid,
            &refs,
            i * 1_000,
            &[512.0 + i as f64, 1536.0 - i as f64],
        )?;
    }

    // --- queries -----------------------------------------------------------------
    let res = db.query(&[Selector::exact("metric", "cpu_usage")], 0, 120_000)?;
    println!(
        "cpu_usage on {}: {} samples, first = {:?}",
        res[0].labels,
        res[0].samples.len(),
        res[0].samples.first()
    );

    // Regex selectors work like Prometheus `=~`.
    let res = db.query(&[Selector::regex("metric", "mem_.*")?], 0, 120_000)?;
    println!("mem_* matched {} series:", res.len());
    for series in &res {
        println!(
            "  {} -> {} samples, last = {:?}",
            series.labels,
            series.samples.len(),
            series.samples.last()
        );
    }

    // Selecting on the shared group tag returns every member.
    let res = db.query(&[Selector::exact("host", "web-2")], 0, 120_000)?;
    assert_eq!(res.len(), 2);

    // `query_profiled` runs the identical query under a trace context and
    // returns an "explain analyze" cost profile: per-stage timings and the
    // per-tier requests/bytes this one query charged (Eq. 4/6, but
    // denominated per operation instead of per process).
    let (res, profile) = db.query_profiled(&[Selector::exact("host", "web-2")], 0, 120_000)?;
    assert_eq!(res.len(), 2);
    println!();
    print!("{profile}");

    db.sync()?;
    println!(
        "done: {} series, {} groups, heap breakdown: {:?}",
        db.series_count(),
        db.group_count(),
        db.memory_stats()
    );

    // Every layer records counters and latency spans into a process-wide
    // registry (docs/OBSERVABILITY.md); dump what this run did.
    let snapshot = timeunion::obs::global().snapshot();
    println!("\n-------------------- metrics --------------------");
    print!("{snapshot}");

    if let Some(path) = &prom_out {
        let text = timeunion::obs::prometheus_text(&snapshot);
        // Round-trip through the format checker before writing, so CI
        // fails here rather than at scrape time.
        timeunion::obs::parse_prometheus_text(&text).map_err(std::io::Error::other)?;
        std::fs::write(path, text)?;
        println!("prometheus snapshot written to {path}");
    }
    if let Some(path) = &trace_out {
        let recorder = timeunion::obs::flight();
        let events = recorder.drain();
        recorder.disable();
        std::fs::write(path, timeunion::obs::chrome_trace_json(&events))?;
        println!("chrome trace written to {path} ({} events)", events.len());
    }

    if db.monitor().is_some() && hold_ms > 0 {
        println!("holding for {hold_ms} ms so the live endpoints can be scraped ...");
        std::thread::sleep(std::time::Duration::from_millis(hold_ms));
    }
    db.begin_shutdown();
    db.stop_serving();
    Ok(())
}
