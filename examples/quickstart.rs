//! Quickstart: open a TimeUnion instance, insert individual timeseries
//! and a timeseries group, and query them back with tag selectors.
//!
//! Run with: `cargo run --release --example quickstart`

use timeunion::engine::{Options, Selector, TimeUnion};
use timeunion::model::Labels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempfile::tempdir()?;
    let db = TimeUnion::open(dir.path().join("db"), Options::default())?;

    // --- individual timeseries ------------------------------------------------
    // Slow path: pass the tags; the engine returns the series ID.
    let cpu = Labels::from_pairs([("metric", "cpu_usage"), ("host", "web-1")]);
    let id = db.put(&cpu, 1_000, 12.5)?;
    // Fast path: insert by ID, skipping tag resolution (§3.4).
    for i in 2..=60 {
        db.put_by_id(id, i * 1_000, 12.5 + (i % 7) as f64)?;
    }

    // --- a timeseries group ----------------------------------------------------
    // All metrics of one host share their scrape timestamps; modelling them
    // as a group deduplicates the timestamp column (§3.1).
    let host_tags = Labels::from_pairs([("host", "web-2")]);
    let members = vec![
        Labels::from_pairs([("metric", "mem_used")]),
        Labels::from_pairs([("metric", "mem_free")]),
    ];
    let (gid, refs) = db.put_group(&host_tags, &members, 1_000, &[512.0, 1536.0])?;
    for i in 2..=60 {
        db.put_group_fast(
            gid,
            &refs,
            i * 1_000,
            &[512.0 + i as f64, 1536.0 - i as f64],
        )?;
    }

    // --- queries -----------------------------------------------------------------
    let res = db.query(&[Selector::exact("metric", "cpu_usage")], 0, 120_000)?;
    println!(
        "cpu_usage on {}: {} samples, first = {:?}",
        res[0].labels,
        res[0].samples.len(),
        res[0].samples.first()
    );

    // Regex selectors work like Prometheus `=~`.
    let res = db.query(&[Selector::regex("metric", "mem_.*")?], 0, 120_000)?;
    println!("mem_* matched {} series:", res.len());
    for series in &res {
        println!(
            "  {} -> {} samples, last = {:?}",
            series.labels,
            series.samples.len(),
            series.samples.last()
        );
    }

    // Selecting on the shared group tag returns every member.
    let res = db.query(&[Selector::exact("host", "web-2")], 0, 120_000)?;
    assert_eq!(res.len(), 2);

    db.sync()?;
    println!(
        "done: {} series, {} groups, heap breakdown: {:?}",
        db.series_count(),
        db.group_count(),
        db.memory_stats()
    );

    // Every layer records counters and latency spans into a process-wide
    // registry (docs/OBSERVABILITY.md); dump what this run did.
    println!("\n-------------------- metrics --------------------");
    print!("{}", timeunion::obs::global().snapshot());
    Ok(())
}
