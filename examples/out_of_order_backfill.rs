//! Out-of-order backfill deep dive: watch late data travel through the
//! time-partitioned LSM-tree as stale-partition merges and L2 patches
//! (§3.3, Figures 10 and 11).
//!
//! Run with: `cargo run --release --example out_of_order_backfill`

use timeunion::engine::{Options, Selector, TimeUnion};
use timeunion::lsm::TreeOptions;
use timeunion::model::Labels;

const MINUTE: i64 = 60_000;
const HOUR: i64 = 60 * MINUTE;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempfile::tempdir()?;
    let opts = Options {
        chunk_samples: 16,
        tree: TreeOptions {
            memtable_bytes: 64 << 10,
            patch_threshold: 2,
            ..TreeOptions::default()
        },
        ..Options::default()
    };
    let db = TimeUnion::open(dir.path().join("db"), opts)?;

    // 12 hours of in-order data for 32 series, then force it all down to
    // the slow tier so backfills must patch L2.
    let ids: Vec<u64> = (0..32)
        .map(|i| {
            db.put(
                &Labels::from_pairs([("metric", "flow"), ("sensor", &format!("s{i:02}"))]),
                0,
                0.0,
            )
        })
        .collect::<Result<_, _>>()?;
    for minute in 1..12 * 60 {
        for (i, id) in ids.iter().enumerate() {
            db.put_by_id(*id, minute * MINUTE, i as f64 + minute as f64 * 0.01)?;
        }
    }
    db.flush_all()?;
    let before = db.tree_stats();
    println!(
        "after in-order load: {} L2 partitions, {} patches so far",
        before.l2_partitions, before.patches_created
    );

    // A sensor delivers a correction batch for hour 2 (long gone to S3).
    for minute in 0..30 {
        db.put_by_id(ids[5], 2 * HOUR + minute * MINUTE + 1, 999.0)?;
    }
    db.flush_all()?;
    let after = db.tree_stats();
    println!(
        "after backfill #1: +{} patches, {} patch merges",
        after.patches_created - before.patches_created,
        after.patch_merges
    );

    // More corrections to the same window push the patch count past the
    // threshold, triggering a merge that splits the table (Figure 11).
    for round in 0..3 {
        for minute in 0..10 {
            db.put_by_id(ids[5], 2 * HOUR + minute * MINUTE + 2 + round, round as f64)?;
        }
        db.flush_all()?;
    }
    let merged = db.tree_stats();
    println!(
        "after backfill #2..4: {} patches created, {} patch merges",
        merged.patches_created, merged.patch_merges
    );
    assert!(
        merged.patch_merges > 0,
        "patch threshold must trigger merges"
    );

    // The corrected window reads as a consistent timeline.
    let res = db.query(
        &[Selector::exact("sensor", "s05")],
        2 * HOUR,
        2 * HOUR + 30 * MINUTE,
    )?;
    let corrected = res[0].samples.iter().filter(|s| s.v == 999.0).count();
    println!(
        "hour-2 window of s05: {} samples, {} carrying the correction value",
        res[0].samples.len(),
        corrected
    );
    assert!(corrected >= 28);
    Ok(())
}
