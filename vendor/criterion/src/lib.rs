//! Offline stub of `criterion` 0.5.
//!
//! Provides the macro / builder surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`Throughput`], [`black_box`] — and prints a
//! mean ns/iter per benchmark. No warm-up statistics, outlier analysis,
//! plots, or baselines: just enough to run `cargo bench` offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much work one iteration processes (used to print rates).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Per-iteration batching hint (ignored; present for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    /// Total measured time and iteration count of the final sample.
    elapsed: Duration,
    iters: u64,
}

const TARGET: Duration = Duration::from_millis(300);

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` repeatedly until the sampling target is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= TARGET {
                self.elapsed = elapsed;
                self.iters = iters;
                return;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < TARGET {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.elapsed = measured;
        self.iters = iters;
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher::new();
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no measurement)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => {
            let mibs = bytes as f64 / (ns / 1e9) / (1024.0 * 1024.0);
            format!("  {mibs:>10.1} MiB/s")
        }
        Throughput::Elements(n) => {
            let eps = n as f64 / (ns / 1e9);
            format!("  {eps:>10.0} elem/s")
        }
    });
    println!("{name:<40} {ns:>12.1} ns/iter{}", rate.unwrap_or_default());
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| black_box(1 + 1));
        assert!(b.iters > 0);
        assert!(b.elapsed >= TARGET);
    }
}
