//! Offline stub of `rand` 0.8 covering the subset this workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen`, `gen_range`, `gen_bool`, `fill_bytes`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction rand's `SmallRng` uses — which is plenty for workload
//! generation and tests. It is **not** cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Types constructible from a u64 seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a value of type `Self` from a generator.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly random value.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widening_mod(rng.next_u64(), span);
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = widening_mod(rng.next_u64(), span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `x mod span` without bias mattering for test workloads (span ≪ 2^64).
fn widening_mod(x: u64, span: u128) -> u128 {
    (x as u128) % span
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A generator seeded from the system clock (non-deterministic-ish).
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos ^ (std::process::id() as u64) << 32)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "{heads}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        use super::RngCore;
        let mut r = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
