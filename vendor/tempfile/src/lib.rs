//! Offline stub of `tempfile` providing [`tempdir`] / [`TempDir`].
//!
//! Directories are created under [`std::env::temp_dir`] with a
//! process-unique plus counter-unique suffix and removed recursively on
//! drop (errors during cleanup are ignored, as in the real crate).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A directory deleted recursively on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The path of the directory.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the guard without deleting the directory.
    pub fn into_path(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

impl AsRef<Path> for TempDir {
    fn as_ref(&self) -> &Path {
        self.path()
    }
}

/// Creates a fresh temporary directory.
pub fn tempdir() -> std::io::Result<TempDir> {
    let base = std::env::temp_dir();
    loop {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!(".tu-tmp-{}-{n}", std::process::id()));
        match std::fs::create_dir_all(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_exists_then_cleans_up() {
        let d = tempdir().unwrap();
        let p = d.path().to_path_buf();
        std::fs::write(p.join("f"), b"x").unwrap();
        assert!(p.is_dir());
        drop(d);
        assert!(!p.exists());
    }

    #[test]
    fn distinct_paths() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
