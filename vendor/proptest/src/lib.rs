//! Offline stub of `proptest` 1.x.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`/`boxed`,
//! `any::<T>()`, [`strategy::Just`], [`prop_oneof!`], range / tuple /
//! string-pattern strategies, and [`collection`]'s `vec` / `btree_set` /
//! `btree_map`.
//!
//! Each property runs `ProptestConfig::cases` deterministic pseudo-random
//! cases (seed overridable with the `PROPTEST_SEED` env var). There is
//! **no shrinking**: a failing case panics with the ordinary assertion
//! message. That trades debuggability for zero dependencies — acceptable
//! for an environment without crates.io access.

pub mod test_runner {
    /// Per-property configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps debug-profile model tests
            // fast while still exercising plenty of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 — deterministic case generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seeded(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Default deterministic seed, overridable via `PROPTEST_SEED`.
        pub fn deterministic() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x7075_7265_5f72_6e67);
            TestRng::seeded(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform value in `[0, bound)` over a 128-bit span.
        pub fn below_u128(&mut self, bound: u128) -> u128 {
            if bound == 0 {
                return 0;
            }
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values of one type.
    ///
    /// Unlike real proptest there is no value tree / shrinking; `generate`
    /// produces one case directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms.last().expect("non-empty").1.generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below_u128(span) as i128) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + rng.below_u128(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String strategies from a simple regex subset: literal characters,
    /// `[...]` character classes with ranges, and `{n}` / `{m,n}` / `?` /
    /// `*` / `+` quantifiers (unbounded repeats capped at 8).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                    let class = parse_class(&chars[i + 1..close], pattern);
                    i = close + 1;
                    class
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    i += 2;
                    vec![c]
                }
                '.' => {
                    i += 1;
                    ('a'..='z').collect()
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pattern);
            let n = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
        let mut set = Vec::new();
        let mut j = 0;
        while j < body.len() {
            if j + 2 < body.len() && body[j + 1] == '-' {
                let (lo, hi) = (body[j], body[j + 2]);
                assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                set.extend(lo..=hi);
                j += 3;
            } else {
                set.push(body[j]);
                j += 1;
            }
        }
        assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
        set
    }

    /// Parses an optional quantifier at `chars[*i]`, returning `(min, max)`.
    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| *i + p)
                    .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier min"),
                        hi.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    macro_rules! impl_tuple {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy ([`any`]).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            // Any bit pattern: exercises subnormals, infinities, and NaN.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.size.pick(rng))
                .map(|_| self.element.generate(rng))
                .collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Sets of **up to** `size` elements (duplicates collapse, as in the
    /// real crate's minimum-size best effort).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.size.pick(rng))
                .map(|_| self.element.generate(rng))
                .collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Maps of **up to** `size` entries keyed by `key`.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.size.pick(rng))
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( @cfg ($cfg:expr) ) => {};
    ( @cfg ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__cfg.cases {
                $crate::__proptest_bind! { (__rng) $($params)* }
                $body
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( ($rng:ident) ) => {};
    ( ($rng:ident) $name:ident in $strat:expr ) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ( ($rng:ident) $name:ident in $strat:expr, $($rest:tt)* ) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { ($rng) $($rest)* }
    };
    ( ($rng:ident) $name:ident : $ty:ty ) => {
        let $name: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
    };
    ( ($rng:ident) $name:ident : $ty:ty, $($rest:tt)* ) => {
        let $name: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_bind! { ($rng) $($rest)* }
    };
}

/// Weighted (`w => strat`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {{
        let __arms: ::std::vec::Vec<(u32, $crate::strategy::BoxedStrategy<_>)> = vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ];
        $crate::strategy::Union::new_weighted(__arms)
    }};
    ( $( $strat:expr ),+ $(,)? ) => {{
        let __arms: ::std::vec::Vec<(u32, $crate::strategy::BoxedStrategy<_>)> = vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ];
        $crate::strategy::Union::new_weighted(__arms)
    }};
}

/// No-shrinking stand-ins for proptest's assertion macros.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_generation() {
        let mut rng = crate::test_runner::TestRng::seeded(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,10}", &mut rng);
            assert!((1..=10).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn union_respects_arms() {
        let mut rng = crate::test_runner::TestRng::seeded(2);
        let s = prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let mut saw = [0u32; 3];
        for _ in 0..400 {
            saw[Strategy::generate(&s, &mut rng) as usize] += 1;
        }
        assert_eq!(saw[0], 0);
        assert!(saw[1] > saw[2], "weighted toward first arm: {saw:?}");
        assert!(saw[2] > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_typed_and_strategy_params(v: u32, n in 3usize..7) {
            let _ = v;
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn collections_respect_sizes(
            xs in crate::collection::vec(any::<u8>(), 2..5),
            m in crate::collection::btree_map(0u32..50, any::<u64>(), 1..10),
        ) {
            prop_assert!((2..5).contains(&xs.len()));
            prop_assert!(m.len() < 10);
        }
    }
}
