//! Offline stub of `parking_lot` backed by `std::sync` primitives.
//!
//! Matches the parking_lot API this workspace uses: `Mutex::lock`,
//! `RwLock::{read, write}` returning guards directly (no `Result`).
//! Poisoning is ignored, which mirrors parking_lot's behaviour of not
//! poisoning at all.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual exclusion primitive (stub over [`std::sync::Mutex`]).
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock (stub over [`std::sync::RwLock`]).
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
