//! Offline stub of `crossbeam` providing the bounded-channel subset this
//! workspace uses, backed by [`std::sync::mpsc::sync_channel`].

pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates a bounded channel of the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn bounded_send_recv_timeout() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            channel::RecvTimeoutError::Timeout
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            channel::RecvTimeoutError::Disconnected
        );
    }
}
